#include "modules/guard.h"

#include "primitives/primitives.h"

namespace amg::modules {

int substrateRing(db::Module& m, const std::string& netName) {
  const Technology& t = m.technology();
  const tech::LayerId tie = t.substrateTieLayer();
  if (tie == tech::kNoLayer)
    throw DesignRuleError("technology has no substrate tie layer");
  const db::NetId net = m.net(netName);

  // Ring width: enough for a contact with its tie enclosure.
  const auto [cw, ch] = t.cutSize(t.layer("contact"));
  const Coord tieEnc = t.enclosure(tie, t.layer("contact")).value_or(0);
  const Coord width = std::max(t.minWidth(tie), std::max(cw, ch) + 2 * tieEnc);

  const auto segs = prim::ring(m, tie, width, std::nullopt, {}, net);
  int contacts = 0;
  for (db::ShapeId seg : segs) {
    const auto metal = prim::inbox(m, t.layer("metal1"), std::nullopt, std::nullopt,
                                   net, {seg});
    const auto cuts = prim::array(m, t.layer("contact"), {seg, metal}, net);
    contacts += static_cast<int>(cuts.size());
  }
  return contacts;
}

void substrateContactAt(db::Module& m, Point at, const std::string& netName) {
  const Technology& t = m.technology();
  const tech::LayerId tie = t.substrateTieLayer();
  const tech::LayerId contact = t.layer("contact");
  const tech::LayerId metal1 = t.layer("metal1");
  const auto [cw, ch] = t.cutSize(contact);
  const Coord tieEnc = t.enclosure(tie, contact).value_or(0);
  const Coord metEnc = t.enclosure(metal1, contact).value_or(0);
  const Coord size = std::max(t.minWidth(tie), std::max(cw, ch) + 2 * tieEnc);
  const db::NetId net = m.net(netName);

  m.addShape(db::makeShape(Box::centredOn(at, size, size), tie, net));
  m.addShape(db::makeShape(
      Box::centredOn(at, size - 2 * (tieEnc - metEnc), size - 2 * (tieEnc - metEnc)),
      metal1, net));
  m.addShape(db::makeShape(Box::centredOn(at, cw, ch), contact, net));
}

db::ShapeId nwellWithTap(db::Module& m, const std::string& tapNet) {
  const Technology& t = m.technology();
  const tech::LayerId pdiff = t.layer("pdiff");
  const tech::LayerId ndiff = t.layer("ndiff");
  const tech::LayerId contact = t.layer("contact");
  const tech::LayerId metal1 = t.layer("metal1");

  const auto pdiffs = m.shapesOn(pdiff);
  if (pdiffs.empty())
    throw DesignRuleError("nwellWithTap: module has no p-diffusion");
  Box pb;
  for (db::ShapeId id : pdiffs) pb = pb.unite(m.shape(id).box);

  // Tap east of the diffusion at the ndiff-pdiff spacing.
  const auto [cw, ch] = t.cutSize(contact);
  const Coord enc = t.enclosure(ndiff, contact).value_or(0);
  const Coord metEnc = t.enclosure(metal1, contact).value_or(0);
  const Coord tapSize = std::max(t.minWidth(ndiff), std::max(cw, ch) + 2 * enc);
  const Coord gap = t.minSpacing(ndiff, pdiff).value_or(0);
  const Point c{pb.x2 + gap + tapSize / 2, pb.center().y};
  const db::NetId net = m.net(tapNet);
  m.addShape(db::makeShape(Box::centredOn(c, tapSize, tapSize), ndiff, net));
  m.addShape(db::makeShape(
      Box::centredOn(c, tapSize - 2 * (enc - metEnc), tapSize - 2 * (enc - metEnc)),
      metal1, net));
  m.addShape(db::makeShape(Box::centredOn(c, cw, ch), contact, net));

  // The well around every diffusion, with at least the pdiff enclosure.
  std::vector<db::ShapeId> targets = m.shapesOn(pdiff);
  const auto ndiffs = m.shapesOn(ndiff);
  targets.insert(targets.end(), ndiffs.begin(), ndiffs.end());
  const Coord margin = t.enclosure(t.layer("nwell"), pdiff).value_or(0);
  return prim::around(m, t.layer("nwell"), targets, margin, net);
}

}  // namespace amg::modules
