#include "modules/centroid.h"

#include <algorithm>
#include <cmath>

#include "route/router.h"

namespace amg::modules {
namespace {

/// One finger with its left/right diffusion terminals.
struct FingerPlan {
  std::string net;    // gate net
  std::string leftT;  // terminal net on the left row
  std::string rightT;
  bool dummy = false;
};

std::vector<FingerPlan> planFingers(const CentroidSpec& s) {
  std::vector<FingerPlan> plan;
  auto dummy = [&] {
    plan.push_back(FingerPlan{s.dummyNet, s.sourceNet, s.sourceNet, true});
  };
  auto active = [&](const std::string& gate, const std::string& left,
                    const std::string& right) {
    plan.push_back(FingerPlan{gate, left, right, false});
  };
  auto groupABBA = [&] {
    active(s.gateANet, s.drainANet, s.sourceNet);
    active(s.gateBNet, s.sourceNet, s.drainBNet);
    active(s.gateBNet, s.drainBNet, s.sourceNet);
    active(s.gateANet, s.sourceNet, s.drainANet);
  };
  auto groupBAAB = [&] {
    active(s.gateBNet, s.drainBNet, s.sourceNet);
    active(s.gateANet, s.sourceNet, s.drainANet);
    active(s.gateANet, s.drainANet, s.sourceNet);
    active(s.gateBNet, s.sourceNet, s.drainBNet);
  };

  for (int i = 0; i < s.edgeDummies; ++i) dummy();
  for (int p = 0; p < s.pairsPerSide; ++p) groupABBA();
  for (int i = 0; i < s.centerDummies; ++i) dummy();
  for (int p = 0; p < s.pairsPerSide; ++p) groupBAAB();
  for (int i = 0; i < s.edgeDummies; ++i) dummy();
  return plan;
}

std::vector<std::string> planRows(const CentroidSpec& s,
                                  const std::vector<FingerPlan>& fingers) {
  std::vector<std::string> rows;
  rows.reserve(fingers.size() + 1);
  for (std::size_t i = 0; i <= fingers.size(); ++i) {
    const FingerPlan* left = i > 0 ? &fingers[i - 1] : nullptr;
    const FingerPlan* right = i < fingers.size() ? &fingers[i] : nullptr;
    std::string net = s.sourceNet;
    if (left && left->rightT != s.sourceNet) net = left->rightT;
    if (right && right->leftT != s.sourceNet) {
      if (net != s.sourceNet && net != right->leftT)
        throw DesignRuleError("centroid: inconsistent row terminals at slot " +
                              std::to_string(i));
      net = right->leftT;
    }
    rows.push_back(net);
  }
  return rows;
}

}  // namespace

db::Module centroidDiffPair(const Technology& t, const CentroidSpec& spec) {
  const auto plan = planFingers(spec);
  const auto rows = planRows(spec, plan);

  FingerArraySpec fa;
  fa.w = spec.w;
  fa.l = spec.l;
  fa.diffLayer = spec.diffLayer;
  fa.name = spec.name;
  for (const FingerPlan& f : plan) {
    FingerSpec fs;
    fs.gateNet = f.net;
    if (f.dummy) {
      // Dummies are tied locally (below); no rail, no extension.
    } else if (f.net == spec.gateANet) {
      fs.gateExtendDown = scaled(t, 4.8);
    } else {
      fs.gateExtendUp = scaled(t, 4.8);
    }
    fa.fingers.push_back(fs);
  }
  fa.rowNets = rows;
  fa.rowExtendDown[spec.sourceNet] = scaled(t, 2);
  fa.rowExtendUp[spec.drainANet] = scaled(t, 2);
  fa.rowExtendUp[spec.drainBNet] = scaled(t, 2);
  fa.rails = {
      RailSpec{spec.sourceNet, "metal1", Dir::South, scaled(t, 2)},
      // The metal2 drain-B rail goes first: its via pads sit at the row
      // tops and the drain-A rail then lands above it (autoConnect closes
      // the gap to the drain-A rows).
      RailSpec{spec.drainBNet, "metal2", Dir::North, scaled(t, 2)},
      RailSpec{spec.drainANet, "metal1", Dir::North, scaled(t, 2)},
      RailSpec{spec.gateANet, "poly", Dir::South, std::nullopt},
      RailSpec{spec.gateBNet, "poly", Dir::North, std::nullopt},
  };
  db::Module m = fingerArray(t, fa);

  // Tie every dummy gate locally to its adjacent source row: a poly
  // contact on the gate and a short metal1 jumper to the row metal.
  // Dummies are off devices, so a contact over the stripe is harmless and
  // keeps all sixteen ties identical (matching).
  if (auto dumOpt = m.findNet(spec.dummyNet)) {
    const db::NetId dum = *dumOpt;
    const db::NetId src = *m.findNet(spec.sourceNet);

    // Collect dummy gate columns and source row metals.
    std::vector<Box> gates;
    for (db::ShapeId id : m.shapesOn(t.layer("poly")))
      if (m.shape(id).net == dum && m.shape(id).box.width() == spec.l)
        gates.push_back(m.shape(id).box);
    std::vector<Box> rows;
    for (db::ShapeId id : m.shapesOn(t.layer("metal1")))
      if (m.shape(id).net == src && m.shape(id).box.height() > m.shape(id).box.width())
        rows.push_back(m.shape(id).box);
    if (gates.empty() || rows.empty())
      throw DesignRuleError("centroid: dummy tie targets not found");

    for (const Box& g : gates) {
      // Nearest source row (dummies are flanked by source rows by plan).
      const Box* best = &rows.front();
      for (const Box& r : rows)
        if (std::abs(r.center().x - g.center().x) <
            std::abs(best->center().x - g.center().x))
          best = &r;
      const Coord y = spec.w / 2;
      route::viaStack(m, Point{g.center().x, y}, t.layer("poly"), t.layer("metal1"),
                      dum);
      route::wireStraight(m, t.layer("metal1"), Point{g.center().x, y},
                          Point{best->center().x, y}, std::nullopt, dum);
    }
    m.moveNet(dum, src);  // one potential now that they are connected
  }
  return m;
}

CentroidSymmetry analyzeCentroid(const db::Module& m, const CentroidSpec& spec) {
  const tech::Technology& t = m.technology();
  CentroidSymmetry out;
  const auto netA = m.findNet(spec.gateANet);
  const auto netB = m.findNet(spec.gateBNet);
  const auto netS = m.findNet(spec.sourceNet);

  std::vector<double> xa, xb;
  int dummies = 0;
  for (db::ShapeId id : m.shapesOn(t.layer("poly"))) {
    const db::Shape& s = m.shape(id);
    if (s.box.width() != spec.l) continue;  // gates are exactly one channel long
    const double cx = static_cast<double>(s.box.center().x) / kMicron;
    if (netA && s.net == *netA) xa.push_back(cx);
    else if (netB && s.net == *netB) xb.push_back(cx);
    else if (netS && s.net == *netS) ++dummies;
  }
  out.fingersA = static_cast<int>(xa.size());
  out.fingersB = static_cast<int>(xb.size());
  out.dummies = dummies;
  if (xa.empty() || xb.empty()) return out;

  // Mirror A's finger positions about the combined centre; they must land
  // on B's positions (cross-coupling makes the placement A<->B symmetric).
  double centre = 0;
  for (double x : xa) centre += x;
  for (double x : xb) centre += x;
  centre /= static_cast<double>(xa.size() + xb.size());

  std::vector<double> mirrored;
  mirrored.reserve(xa.size());
  for (double x : xa) mirrored.push_back(2 * centre - x);
  std::sort(mirrored.begin(), mirrored.end());
  std::sort(xb.begin(), xb.end());
  out.fingerPlacementSymmetric =
      mirrored.size() == xb.size() &&
      std::equal(mirrored.begin(), mirrored.end(), xb.begin(),
                 [](double a, double b) { return std::abs(a - b) < 0.01; });

  double ca = 0, cb = 0;
  for (double x : xa) ca += x;
  for (double x : xb) cb += x;
  out.centroidOffsetUm = std::abs(ca / xa.size() - cb / xb.size());
  return out;
}

}  // namespace amg::modules
