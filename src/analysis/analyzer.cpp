#include "analysis/analyzer.h"

#include <algorithm>

#include "analysis/internal.h"
#include "obs/obs.h"

namespace amg::analysis {

using lang::Body;
using lang::EntityDecl;
using lang::Expr;
using lang::Stmt;

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

const Finding* Report::firstError(bool werror) const {
  for (const Finding& f : findings) {
    if (f.severity == Severity::Error) return &f;
    if (werror && f.severity == Severity::Warning) return &f;
  }
  return nullptr;
}

const EntitySig* Report::findEntity(const std::string& name) const {
  const auto it = std::find_if(entities.begin(), entities.end(),
                               [&](const EntitySig& e) { return e.name == name; });
  return it == entities.end() ? nullptr : &*it;
}

// --------------------------------------------------------------------------
// AST walk utilities
// --------------------------------------------------------------------------

namespace detail {

void walkExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  if (e.lhs) walkExpr(*e.lhs, fn);
  if (e.rhs) walkExpr(*e.rhs, fn);
  for (const lang::Arg& a : e.args)
    if (a.value) walkExpr(*a.value, fn);
}

void walkStmts(const Body& body, const std::function<void(const Stmt&)>& fn) {
  for (const Stmt& s : body) {
    fn(s);
    walkStmts(s.body, fn);
    walkStmts(s.elseBody, fn);
    for (const Body& b : s.branches) walkStmts(b, fn);
  }
}

void walkExprs(const Body& body, const std::function<void(const Expr&)>& fn) {
  walkStmts(body, [&](const Stmt& s) {
    if (s.expr) walkExpr(*s.expr, fn);
    if (s.expr2) walkExpr(*s.expr2, fn);
  });
}

std::unordered_set<std::string> assignedNames(const Body& body) {
  std::unordered_set<std::string> names;
  walkStmts(body, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::Assign || s.kind == Stmt::Kind::For)
      names.insert(s.name);
  });
  return names;
}

BoundCall bindCall(const Expr& call, const lang::BuiltinSig& sig) {
  BoundCall b;
  b.slotArgs.assign(sig.slots.size(), nullptr);
  std::size_t nextPos = 0;
  for (const lang::Arg& a : call.args) {
    if (a.name) {
      for (std::size_t i = 0; i < sig.slots.size(); ++i)
        if (*a.name == sig.slots[i].name) {
          b.slotArgs[i] = a.value.get();
          break;
        }
      continue;
    }
    while (nextPos < b.slotArgs.size() && b.slotArgs[nextPos]) ++nextPos;
    if (nextPos < b.slotArgs.size())
      b.slotArgs[nextPos++] = a.value.get();
    else if (sig.variadic)
      b.extras.push_back(a.value.get());
  }
  return b;
}

void collectSymbols(Context& cx) {
  // Which unit first declared each entity name: a re-declaration only
  // warns when it happens in the SAME file — across files, shadowing is
  // the normal library-accumulation idiom (each self-contained script
  // carries its own copy of ContactRow, and loadEntities keeps the last).
  std::unordered_map<std::string, const std::string*> declFile;
  for (const Unit& u : cx.units) {
    for (const EntityDecl& ent : u.prog->entities) {
      // Duplicate parameter names: the interpreter binds by name, so the
      // second declaration is unreachable.
      for (std::size_t i = 0; i < ent.params.size(); ++i)
        for (std::size_t j = i + 1; j < ent.params.size(); ++j)
          if (ent.params[i].name == ent.params[j].name)
            cx.emit(Severity::Error, "AMG-L008",
                    "entity '" + ent.name + "' declares parameter '" +
                        ent.params[j].name + "' twice",
                    *u.file, ent.params[j].line ? ent.params[j].line : ent.line,
                    ent.params[j].col, "rename or remove one of them");
      const auto [it, inserted] = cx.entities.emplace(ent.name, &ent);
      if (!inserted) {
        if (declFile[ent.name] == u.file)
          cx.emit(Severity::Warning, "AMG-L002",
                  "duplicate declaration of entity '" + ent.name +
                      "' (the earlier one is shadowed)",
                  *u.file, ent.line, ent.col,
                  "the interpreter keeps the last declaration of a name; "
                  "remove or rename the unused one");
        it->second = &ent;  // later declaration wins, like the interpreter
      }
      declFile[ent.name] = u.file;
      for (const auto& p : ent.params) cx.assignedAnywhere.insert(p.name);
      for (const std::string& n : assignedNames(ent.body))
        cx.assignedAnywhere.insert(n);
    }
    for (const std::string& n : assignedNames(u.prog->top)) {
      cx.globals.insert(n);
      cx.assignedAnywhere.insert(n);
    }
  }
}

}  // namespace detail

// --------------------------------------------------------------------------
// Analyzer driver
// --------------------------------------------------------------------------

Analyzer::Analyzer(Options opt) : opt_(opt) {}
Analyzer::~Analyzer() = default;
Analyzer::Analyzer(Analyzer&&) noexcept = default;
Analyzer& Analyzer::operator=(Analyzer&&) noexcept = default;

void Analyzer::addSource(const std::string& source, const std::string& file) {
  try {
    units_.push_back(Unit{lang::parseSource(source), file});
  } catch (const lang::LangError& e) {
    // The lexer/parser diagnostic becomes an error finding with its
    // original AMG-LEX/AMG-PARSE code; the unit cannot be analyzed.
    util::Diag d = e.diag();
    if (d.loc.file.empty()) d.loc.file = file;
    pre_.push_back(Finding{Severity::Error, std::move(d)});
  }
}

Report Analyzer::run() {
  obs::Span span("analysis.run");
  span.arg("units", static_cast<std::uint64_t>(units_.size()));
  OBS_COUNT_N("analysis.files", units_.size() + pre_.size());

  Report rep;
  rep.findings = pre_;

  detail::Context cx{opt_, {}, {}, {}, {}, &rep.findings};
  cx.units.reserve(units_.size());
  for (const Unit& u : units_) cx.units.push_back(detail::Unit{&u.prog, &u.file});

  detail::collectSymbols(cx);
  {
    obs::Span p("analysis.symbols");
    detail::symbolPass(cx);
  }
  {
    obs::Span p("analysis.calls");
    detail::callPass(cx);
  }
  {
    obs::Span p("analysis.tech");
    detail::techPass(cx);
  }
  {
    obs::Span p("analysis.flow");
    detail::flowPass(cx);
  }

  // Deterministic report order: by location, then code.
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.diag.loc.file != b.diag.loc.file)
                       return a.diag.loc.file < b.diag.loc.file;
                     if (a.diag.loc.line != b.diag.loc.line)
                       return a.diag.loc.line < b.diag.loc.line;
                     if (a.diag.loc.col != b.diag.loc.col)
                       return a.diag.loc.col < b.diag.loc.col;
                     return a.diag.code < b.diag.code;
                   });
  for (const Finding& f : rep.findings) {
    switch (f.severity) {
      case Severity::Error: ++rep.errors; break;
      case Severity::Warning: ++rep.warnings; break;
      case Severity::Note: ++rep.notes; break;
    }
  }
  OBS_COUNT_N("analysis.findings.error", rep.errors);
  OBS_COUNT_N("analysis.findings.warning", rep.warnings);
  OBS_COUNT_N("analysis.findings.note", rep.notes);

  // Harvest the callable surface for pre-flight consumers.
  for (const auto& [name, decl] : cx.entities) {
    EntitySig sig;
    sig.name = name;
    sig.line = decl->line;
    for (const auto& p : decl->params)
      sig.params.push_back(
          EntitySig::Param{p.name, p.optional, p.defaultValue != nullptr});
    rep.entities.push_back(std::move(sig));
  }
  std::sort(rep.entities.begin(), rep.entities.end(),
            [](const EntitySig& a, const EntitySig& b) { return a.name < b.name; });
  rep.globals.assign(cx.globals.begin(), cx.globals.end());
  std::sort(rep.globals.begin(), rep.globals.end());

  span.arg("errors", static_cast<std::uint64_t>(rep.errors))
      .arg("warnings", static_cast<std::uint64_t>(rep.warnings));
  return rep;
}

Report analyzeSource(const std::string& source, const std::string& file,
                     const Options& opt) {
  Analyzer a(opt);
  a.addSource(source, file);
  return a.run();
}

}  // namespace amg::analysis
