// Dataflow half of the bytecode verifier (see bcverify.h): a worklist
// abstract interpretation over the chunk CFG.
//
// Abstract domain, chosen as the cheapest thing that proves what the VM's
// unchecked dispatch path assumes:
//   * operand stack: a vector of {Any, Num} — its length is the abstract
//     stack depth, which must agree at every join point and match the
//     X-macro stack effects;
//   * slots: {Unset, Set, Num} — Set means definitely bound in this frame,
//     Num additionally means definitely holding a number, which is what
//     FOR_TEST/FOR_INC require before reading the counter/bound pair as
//     raw doubles.
//
// The CFG needs no explicit edge list: jump operands are edges, everything
// else falls through, and a VARIANT instruction adds one extra edge to its
// site's end (branch bodies are laid out contiguously after the operand,
// so fall-through covers branch entry and branch-to-branch joins).
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/bcverify.h"

namespace amg::analysis::detail {

namespace {

using lang::Chunk;
using lang::Op;

enum class AV : std::uint8_t { Any, Num };
enum class SS : std::uint8_t { Unset, Set, Num };

struct State {
  std::vector<AV> stack;
  std::vector<SS> slots;
};

AV meet(AV a, AV b) { return a == b ? a : AV::Any; }

SS meet(SS a, SS b) {
  if (a == b) return a;
  if (a == SS::Unset || b == SS::Unset) return SS::Unset;
  return SS::Set;  // Set ∧ Num
}

constexpr std::size_t kMaxDiags = 16;

class Flow {
 public:
  Flow(const Chunk& c, const ChunkContext& ctx, const Boundaries& b,
       ChunkVerification& out)
      : c_(c), ctx_(ctx), b_(b), out_(out), n_(c.code.size()) {}

  void run() {
    // States are stored only at basic-block *leaders* (the entry point and
    // every jump target); straight-line runs walk a single reused scratch
    // state in place.  Per-instruction storage would double the cold
    // compile time — this keeps the whole verifier inside bench_vm's 2%
    // overhead budget.
    leader_.assign(n_ + 1, 0);
    leader_[0] = 1;
    for (std::uint32_t at = 0; at < n_;) {
      const Op o = static_cast<Op>(c_.code[at]);
      const std::uint32_t* a = c_.code.data() + at + 1;
      switch (o) {
        case Op::JUMP:
        case Op::JF:
          leader_[a[0]] = 1;
          break;
        case Op::JSET:
        case Op::FOR_TEST:
        case Op::FOR_INC:
          leader_[a[1]] = 1;
          break;
        case Op::VARIANT:
          leader_[c_.variants[a[0]].end] = 1;
          break;
        default:
          break;
      }
      at += 1 + static_cast<std::uint32_t>(lang::opOperands(o));
    }

    in_.assign(n_ + 1, std::nullopt);
    joinErr_.assign(n_ + 1, 0);
    queued_.assign(n_ + 1, 0);
    out_.depthIn.assign(n_, -1);

    State entry;
    entry.slots.assign(c_.slotCount, SS::Unset);
    for (std::size_t i = 0; i < ctx_.paramCount && i < c_.slotCount; ++i)
      entry.slots[i] = SS::Set;  // bound by instantiate(); value may be None
    propagate(0, 0, entry);

    while (!work_.empty()) {
      const std::uint32_t at = work_.front();
      work_.pop_front();
      queued_[at] = 0;
      runBlock(at);
    }
  }

 private:
  void diag(std::uint32_t offset, const char* code, std::string msg) {
    // The worklist revisits an offset whenever its in-state changes; one
    // finding per (offset, code) is all the signal there is.
    if (!seen_.insert({offset, code}).second) return;
    if (out_.diags.size() >= kMaxDiags) return;
    const lang::LineInfo li = c_.lineAt(offset);
    out_.diags.push_back(util::Diag{
        code,
        "bytecode verify: " + ctx_.name + "+" + std::to_string(offset) + ": " +
            std::move(msg),
        {"", li.line, li.col},
        ""});
  }

  /// Join `s` into the in-state at leader `to`; enqueue on change.  Depth
  /// disagreement is the B021 rejection — the old state is kept so the
  /// fixpoint still terminates.
  void propagate(std::uint32_t from, std::uint32_t to, const State& s) {
    if (to > n_ || !b_.isStart[to]) return;  // structural pass guarantees this
    leader_[to] = 1;  // explicit targets are pre-marked; entry lands here too
    std::optional<State>& dst = in_[to];
    bool changed = false;
    if (!dst) {
      dst = s;
      changed = true;
    } else if (dst->stack.size() != s.stack.size()) {
      if (!joinErr_[to]) {
        joinErr_[to] = 1;
        diag(from, "AMG-B021",
             "stack depth " + std::to_string(s.stack.size()) +
                 " disagrees with depth " + std::to_string(dst->stack.size()) +
                 " at join point " + std::to_string(to));
      }
      return;
    } else {
      for (std::size_t i = 0; i < dst->stack.size(); ++i) {
        const AV m = meet(dst->stack[i], s.stack[i]);
        changed |= m != dst->stack[i];
        dst->stack[i] = m;
      }
      for (std::size_t i = 0; i < dst->slots.size(); ++i) {
        const SS m = meet(dst->slots[i], s.slots[i]);
        changed |= m != dst->slots[i];
        dst->slots[i] = m;
      }
    }
    if (changed && to < n_ && !queued_[to]) {
      queued_[to] = 1;
      work_.push_back(to);
    }
  }

  /// Check the FOR counter/bound pair (slots s, s+1) is numeric where the
  /// VM reads it as raw doubles; heal the state after diagnosing so one
  /// corruption reports once instead of cascading.
  void forPair(std::uint32_t at, State& s, std::uint32_t slot) {
    for (std::uint32_t i = slot; i <= slot + 1; ++i) {
      if (s.slots[i] == SS::Unset)
        diag(at, "AMG-B023",
             "FOR counter/bound slot " + std::to_string(i) +
                 " read before initialization");
      else if (s.slots[i] != SS::Num)
        diag(at, "AMG-B024",
             "FOR counter/bound slot " + std::to_string(i) +
                 " is not provably numeric (missing TONUM discipline)");
      s.slots[i] = SS::Num;
    }
  }

  /// Interpret the straight-line run starting at leader `at` over one
  /// reused scratch state, propagating into leader states at its edges.
  void runBlock(std::uint32_t leaderAt) {
    scratch_ = *in_[leaderAt];  // capacity reuse: no allocation after warmup
    State& s = scratch_;
    std::uint32_t at = leaderAt;
    for (;;) {
      out_.depthIn[at] = static_cast<int>(s.stack.size());
      const std::uint32_t next =
          at + 1 +
          static_cast<std::uint32_t>(lang::opOperands(static_cast<Op>(c_.code[at])));
      if (!transfer(at, s)) return;
      // The structural pass guarantees the chunk ends with a terminator
      // (RET), so a falling-through instruction always has a successor.
      if (leader_[next]) {
        propagate(at, next, s);
        return;
      }
      at = next;
    }
  }

  /// One instruction's transfer function over `s` in place; returns false
  /// when control does not fall through (terminator, taken-only jump, or
  /// an underflow that makes the successor state underivable).
  bool transfer(std::uint32_t at, State& s) {
    const Op o = static_cast<Op>(c_.code[at]);
    const std::uint32_t* a = c_.code.data() + at + 1;
#ifndef NDEBUG
    const std::size_t depthBefore = s.stack.size();
#endif

    // Underflow aborts the instruction: no successor state is derivable.
    const auto need = [&](std::size_t k) {
      if (s.stack.size() >= k) return true;
      diag(at, "AMG-B020",
           std::string(lang::opName(o)) + " needs " + std::to_string(k) +
               " stack value(s), abstract depth is " +
               std::to_string(s.stack.size()));
      return false;
    };
    const auto pop = [&] {
      const AV v = s.stack.back();
      s.stack.pop_back();
      return v;
    };

    switch (o) {
      case Op::CONST:
        s.stack.push_back(c_.constants[a[0]].kind() == lang::Value::Kind::Number
                              ? AV::Num
                              : AV::Any);
        break;
      case Op::POP:
        if (!need(1)) return false;
        pop();
        break;
      case Op::COPY:
      case Op::STMT:
        if (o == Op::COPY && !need(1)) return false;
        break;
      case Op::TONUM:
        if (!need(1)) return false;
        s.stack.back() = AV::Num;
        break;
      case Op::LOAD_SLOT:
        if (s.slots[a[0]] == SS::Unset)
          diag(at, "AMG-B023",
               "slot " + std::to_string(a[0]) + " read before initialization");
        s.stack.push_back(s.slots[a[0]] == SS::Num ? AV::Num : AV::Any);
        break;
      case Op::STORE_SLOT:
        if (!need(1)) return false;
        s.slots[a[0]] = pop() == AV::Num ? SS::Num : SS::Set;
        break;
      case Op::LOAD_LOCAL:
        // An unbound slot falls back to a dynamic-scope walk with its own
        // clean diagnostic, so no init-before-read obligation here.
        s.stack.push_back(s.slots[a[0]] == SS::Num ? AV::Num : AV::Any);
        break;
      case Op::STORE_LOCAL: {
        if (!need(1)) return false;
        const AV v = pop();
        // Dynamic-scope store: may mutate an enclosing binding instead of
        // binding here, so an Unset slot stays Unset.
        if (s.slots[a[0]] != SS::Unset)
          s.slots[a[0]] = v == AV::Num ? SS::Num : SS::Set;
        break;
      }
      case Op::LOAD_DYN:
      case Op::LOAD_GLOBAL:
        s.stack.push_back(AV::Any);
        break;
      case Op::STORE_GLOBAL:
        if (!need(1)) return false;
        pop();
        break;
      case Op::ADD: {
        if (!need(2)) return false;
        const AV rhs = pop();
        const AV lhs = pop();
        // number+number or string concatenation; anything else raises a
        // clean AMG-INTERP-009.
        s.stack.push_back(lhs == AV::Num && rhs == AV::Num ? AV::Num : AV::Any);
        break;
      }
      case Op::SUB:
      case Op::MUL:
      case Op::DIV:
      case Op::LT:
      case Op::GT:
      case Op::LE:
      case Op::GE:
      case Op::EQ:
      case Op::NE:
        if (!need(2)) return false;
        pop();
        pop();
        s.stack.push_back(AV::Num);
        break;
      case Op::JUMP:
        propagate(at, a[0], s);
        return false;
      case Op::JF:
        if (!need(1)) return false;
        pop();
        propagate(at, a[0], s);
        break;
      case Op::JSET:
        propagate(at, a[1], s);
        break;
      case Op::FOR_TEST:
        forPair(at, s, a[0]);
        propagate(at, a[1], s);
        break;
      case Op::FOR_INC:
        forPair(at, s, a[0]);
        propagate(at, a[1], s);
        return false;
      case Op::REQUIRE:
        break;
      case Op::CALL: {
        const std::size_t argc = c_.calls[a[0]].argc;
        if (!need(argc)) return false;
        s.stack.resize(s.stack.size() - argc);
        s.stack.push_back(AV::Any);
        break;
      }
      case Op::VARIANT:
        // Fall-through enters the first branch; the extra edge models the
        // VM resuming at the site's end after the winning branch.
        propagate(at, c_.variants[a[0]].end, s);
        break;
      case Op::ERROR:
        if (!need(1)) return false;
        pop();
        return false;  // throws DesignRuleError
      case Op::RAISE:
        return false;  // throws the prebuilt diagnostic
      case Op::RET:
        if (!s.stack.empty())
          diag(at, "AMG-B022",
               "stack depth " + std::to_string(s.stack.size()) +
                   " at RET (compiled chunks exit at depth 0)");
        return false;
    }

#ifndef NDEBUG
    // The transfer functions above must agree with the X-macro stack
    // effects ("-?" = CALL, variable).
    if (o != Op::CALL) {
      const char* eff = lang::opStackEffect(o);
      const int expect = eff[0] == '+' ? 1 : eff[0] == '-' ? -1 : 0;
      assert(static_cast<int>(s.stack.size()) ==
             static_cast<int>(depthBefore) + expect);
    }
#endif
    return true;
  }

  const Chunk& c_;
  const ChunkContext& ctx_;
  const Boundaries& b_;
  ChunkVerification& out_;
  const std::size_t n_;
  std::vector<std::optional<State>> in_;  ///< populated at leaders only
  std::vector<std::uint8_t> leader_;      ///< entry + every jump target
  State scratch_;                         ///< runBlock's reused walk state
  std::set<std::pair<std::uint32_t, const char*>> seen_;
  std::vector<std::uint8_t> joinErr_;
  std::vector<std::uint8_t> queued_;
  std::deque<std::uint32_t> work_;
};

}  // namespace

void analyzeFlow(const Chunk& c, const ChunkContext& ctx, const Boundaries& b,
                 ChunkVerification& out) {
  Flow(c, ctx, b, out).run();
}

}  // namespace amg::analysis::detail
