// Shared state of the analyzer passes.  Not installed; include only from
// src/analysis/*.cpp.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/analyzer.h"
#include "lang/builtins.h"

namespace amg::analysis::detail {

/// One parsed source participating in the analysis.
struct Unit {
  const lang::Program* prog;
  const std::string* file;
};

/// Pass-shared context: the symbol tables the collect step builds, and the
/// findings sink.
struct Context {
  const Options& opt;
  std::vector<Unit> units;

  /// Entity name -> declaration; later declarations shadow earlier ones
  /// (interpreter semantics).
  std::unordered_map<std::string, const lang::EntityDecl*> entities;
  /// Names assigned anywhere at top level of any unit; entity bodies can
  /// read them through the interpreter's dynamic scoping.
  std::unordered_set<std::string> globals;
  /// Names assigned in any scope of the program (used to distinguish
  /// "never defined anywhere" from "defined in a different scope").
  std::unordered_set<std::string> assignedAnywhere;

  std::vector<Finding>* out;

  void emit(Severity sev, const char* code, std::string msg,
            const std::string& file, int line, int col, std::string hint) const {
    out->push_back(Finding{
        sev, util::Diag{code, std::move(msg), {file, line, col}, std::move(hint)}});
  }

  const lang::EntityDecl* findEntity(const std::string& name) const {
    const auto it = entities.find(name);
    return it == entities.end() ? nullptr : it->second;
  }
};

/// Build the symbol tables and report declaration-level findings
/// (duplicate entities L002, duplicate parameters L008).
void collectSymbols(Context& cx);

/// Pass 1: symbol resolution — L001 (undefined entity/function), L003
/// (undefined variable), L005/L006 (unused parameter/local), L007
/// (call-graph cycle), L009 (caller-scope variable).
void symbolPass(Context& cx);

/// Pass 2: call checking against EntityDecl / the builtin table — L010
/// (too many positional), L011 (unknown named argument), L012 (required
/// missing / malformed variadic call), L013 (argument bound twice), L014
/// (constant of the wrong type), L015 (bad enumerated constant), L016
/// (geometry call outside an entity body).
void callPass(Context& cx);

/// Pass 3: tech compatibility — L020 (unknown layer name, including
/// constants flowing through layer-typed entity parameters), L021
/// (minwidth() of a layer without a width rule).  No-op without a deck.
void techPass(Context& cx);

/// Pass 4: constant folding + interval analysis — L004 (may be read
/// before assignment), L030/L031 (condition always true/false), L032
/// (loop never executes), L033 (VARIANT branch can never succeed), L034
/// (unreachable VARIANT branch), L035 (constant division by zero).
void flowPass(Context& cx);

// --- small AST utilities shared by the passes ----------------------------

/// Preorder walk over every statement of `body`, including nested bodies.
void walkStmts(const lang::Body& body,
               const std::function<void(const lang::Stmt&)>& fn);

/// Preorder walk over every expression reachable from `body` (statement
/// expressions and nested call arguments alike).
void walkExprs(const lang::Body& body,
               const std::function<void(const lang::Expr&)>& fn);

/// Preorder walk over one expression tree.
void walkExpr(const lang::Expr& e,
              const std::function<void(const lang::Expr&)>& fn);

/// Names assigned by any statement in `body` (Assign targets and FOR loop
/// variables), including nested bodies.
std::unordered_set<std::string> assignedNames(const lang::Body& body);

/// Best-effort structural binding of a call's arguments onto a builtin's
/// slots: slotArgs[i] is the expression bound to slot i (nullptr when
/// unbound), extras are variadic arguments past the table.  Malformed
/// calls (unknown names, overflow) simply leave slots unbound — the call
/// pass reports those; other passes just consume what did bind.
struct BoundCall {
  std::vector<const lang::Expr*> slotArgs;
  std::vector<const lang::Expr*> extras;
};
BoundCall bindCall(const lang::Expr& call, const lang::BuiltinSig& sig);

}  // namespace amg::analysis::detail
