// Pass 2: call checking.
//
// Every Call expression is validated against its callee's declared shape —
// an EntityDecl for entities, the lang/builtins.h signature table for
// builtins.  The binding simulation mirrors interp.cpp exactly (positional
// arguments fill slots left to right skipping name-bound ones; entity
// positionals advance independently of named bindings), so an error here
// is precisely a call that would throw AMG-INTERP-003/004/005/007 at
// runtime, and a warning is a binding the interpreter resolves silently
// but almost certainly not as intended (the same slot bound twice).
#include "analysis/internal.h"

namespace amg::analysis::detail {

using lang::Arg;
using lang::Body;
using lang::BuiltinSig;
using lang::EntityDecl;
using lang::Expr;
using lang::SlotType;

namespace {

std::string signatureOf(const BuiltinSig& sig) {
  std::string s = sig.name;
  s += '(';
  for (std::size_t i = 0; i < sig.slots.size(); ++i) {
    if (i) s += ", ";
    s += sig.slots[i].name;
  }
  if (sig.variadic) s += sig.slots.empty() ? "..." : ", ...";
  s += ')';
  return s;
}

std::string signatureOf(const EntityDecl& ent) {
  std::string s = ent.name;
  s += '(';
  for (std::size_t i = 0; i < ent.params.size(); ++i) {
    if (i) s += ", ";
    if (ent.params[i].optional) s += '<';
    s += ent.params[i].name;
    if (ent.params[i].optional) s += '>';
  }
  s += ')';
  return s;
}

/// Does a *literal* expression satisfy a slot type?  Non-literal arguments
/// (variables, calls, arithmetic) are never flagged — their runtime type is
/// unknown here.
bool literalMatches(const Expr& e, SlotType t) {
  switch (e.kind) {
    case Expr::Kind::Number:
      return t == SlotType::Number || t == SlotType::Any;
    case Expr::Kind::String:
      return t == SlotType::String || t == SlotType::Layer ||
             t == SlotType::Net || t == SlotType::Any;
    case Expr::Kind::Dir:
      return t == SlotType::Dir || t == SlotType::Any;
    default:
      return true;  // not a literal: can't judge statically
  }
}

const char* literalKindName(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Number: return "a number";
    case Expr::Kind::String: return "a string";
    case Expr::Kind::Dir: return "a direction";
    default: return "a value";
  }
}

void checkSlotLiteral(const Context& cx, const std::string& file,
                      const BuiltinSig& sig, const char* slotName, SlotType type,
                      const Expr& arg) {
  if (!literalMatches(arg, type)) {
    cx.emit(Severity::Error, "AMG-L014",
            std::string(sig.name) + "(): argument '" + slotName + "' wants " +
                lang::slotTypeName(type) + ", got " + literalKindName(arg),
            file, arg.line, arg.col, "the signature is " + signatureOf(sig));
    return;
  }
  // Enumerated string constants: varedge's side is the only one.
  if (std::string_view(sig.name) == "varedge" &&
      std::string_view(slotName) == "side" && arg.kind == Expr::Kind::String &&
      arg.text != "left" && arg.text != "right" && arg.text != "top" &&
      arg.text != "bottom" && arg.text != "all") {
    cx.emit(Severity::Error, "AMG-L015",
            "varedge(): bad side '" + arg.text + "'", file, arg.line, arg.col,
            "sides are left|right|top|bottom|all");
  }
}

/// POLY(layer, x1, y1, ...): bound by hand in the interpreter, so checked
/// by hand here, reproducing its exact failure conditions.
void checkPoly(const Context& cx, const std::string& file, const Expr& e,
               const BuiltinSig& sig) {
  std::size_t positional = 0;
  for (const Arg& a : e.args) {
    if (a.name) {
      if (*a.name != "net")
        cx.emit(Severity::Error, "AMG-L011",
                "POLY(): unknown named argument '" + *a.name + "'", file,
                a.value->line, a.value->col,
                "POLY takes coordinates plus an optional net=...");
      continue;
    }
    ++positional;
    if (positional == 1) {
      checkSlotLiteral(cx, file, sig, "layer", SlotType::Layer, *a.value);
    } else if (!literalMatches(*a.value, SlotType::Number)) {
      cx.emit(Severity::Error, "AMG-L014",
              "POLY(): coordinates must be numbers, got " +
                  std::string(literalKindName(*a.value)),
              file, a.value->line, a.value->col, "vertices are x,y pairs");
    }
  }
  // The interpreter gates on the raw argument count, then on pairing.
  if (e.args.size() < 7)
    cx.emit(Severity::Error, "AMG-L012",
            "POLY(layer, x1, y1, ...) needs at least 3 vertices", file, e.line,
            e.col, "pass the layer and then at least three x,y pairs");
  else if (positional > 0 && (positional - 1) % 2 != 0)
    cx.emit(Severity::Error, "AMG-L012", "POLY(): odd number of coordinates",
            file, e.line, e.col, "vertices are x,y pairs");
}

/// compact(obj, dir, [layers...]): positional-only variadic.
void checkCompact(const Context& cx, const std::string& file, const Expr& e,
                  const BuiltinSig& sig) {
  for (const Arg& a : e.args)
    if (a.name) {
      cx.emit(Severity::Error, "AMG-L012",
              "compact() takes positional arguments only", file, a.value->line,
              a.value->col, "write compact(obj, WEST) without names");
      return;
    }
  if (e.args.size() < 2) {
    cx.emit(Severity::Error, "AMG-L012",
            "compact() needs an object and a direction", file, e.line, e.col,
            "e.g. compact(row, WEST)");
    return;
  }
  checkSlotLiteral(cx, file, sig, "obj", SlotType::Object, *e.args[0].value);
  checkSlotLiteral(cx, file, sig, "dir", SlotType::Dir, *e.args[1].value);
  for (std::size_t i = 2; i < e.args.size(); ++i)
    if (!literalMatches(*e.args[i].value, SlotType::Layer))
      cx.emit(Severity::Error, "AMG-L014",
              "compact(): ignore-list entries must be layer names", file,
              e.args[i].value->line, e.args[i].value->col,
              "e.g. compact(row, WEST, \"metal1\")");
}

void checkBuiltinCall(const Context& cx, const std::string& file, const Expr& e,
                      const BuiltinSig& sig, bool topLevel) {
  if (sig.geometry && topLevel)
    cx.emit(Severity::Error, "AMG-L016",
            std::string(sig.name) +
                "() builds geometry and cannot be called outside an entity body",
            file, e.line, e.col,
            "move this call into an ENT body; the calling sequence only "
            "instantiates entities");

  if (std::string_view(sig.name) == "POLY") return checkPoly(cx, file, e, sig);
  if (std::string_view(sig.name) == "compact")
    return checkCompact(cx, file, e, sig);

  // Simulate the interpreter's bindArgs().
  std::vector<const Expr*> bound(sig.slots.size(), nullptr);
  std::size_t nextPos = 0;
  for (const Arg& a : e.args) {
    if (a.name) {
      std::size_t idx = sig.slots.size();
      for (std::size_t i = 0; i < sig.slots.size(); ++i)
        if (*a.name == sig.slots[i].name) { idx = i; break; }
      if (idx == sig.slots.size()) {
        cx.emit(Severity::Error, "AMG-L011",
                std::string(sig.name) + "() has no parameter '" + *a.name + "'",
                file, a.value->line, a.value->col,
                "the signature is " + signatureOf(sig));
        continue;
      }
      if (bound[idx])
        cx.emit(Severity::Warning, "AMG-L013",
                std::string(sig.name) + "(): argument '" + *a.name +
                    "' is bound twice (the last binding wins)",
                file, a.value->line, a.value->col,
                "drop one of the bindings");
      bound[idx] = a.value.get();
      continue;
    }
    while (nextPos < bound.size() && bound[nextPos]) ++nextPos;
    if (nextPos >= bound.size()) {
      if (!sig.variadic) {
        cx.emit(Severity::Error, "AMG-L010",
                "too many arguments for " + std::string(sig.name) + "() (takes " +
                    std::to_string(sig.slots.size()) + ")",
                file, a.value->line, a.value->col,
                "the signature is " + signatureOf(sig));
        break;
      }
      if (!literalMatches(*a.value, sig.variadicType))
        cx.emit(Severity::Error, "AMG-L014",
                std::string(sig.name) + "(): extra arguments must each be " +
                    lang::slotTypeName(sig.variadicType),
                file, a.value->line, a.value->col,
                "the signature is " + signatureOf(sig));
      continue;
    }
    bound[nextPos] = a.value.get();
  }

  for (std::size_t i = 0; i < sig.required; ++i)
    if (!bound[i])
      cx.emit(Severity::Error, "AMG-L012",
              std::string(sig.name) + "(): required argument '" +
                  sig.slots[i].name + "' missing",
              file, e.line, e.col,
              "pass it positionally or as " + std::string(sig.slots[i].name) +
                  "=...");

  for (std::size_t i = 0; i < bound.size(); ++i)
    if (bound[i])
      checkSlotLiteral(cx, file, sig, sig.slots[i].name, sig.slots[i].type,
                       *bound[i]);
}

void checkEntityCall(const Context& cx, const std::string& file, const Expr& e,
                     const EntityDecl& ent) {
  std::vector<bool> filled(ent.params.size(), false);
  std::size_t positional = 0;  // advances independently of named bindings,
                               // exactly like the interpreter's counter
  for (const Arg& a : e.args) {
    if (a.name) {
      std::size_t idx = ent.params.size();
      for (std::size_t i = 0; i < ent.params.size(); ++i)
        if (*a.name == ent.params[i].name) { idx = i; break; }
      if (idx == ent.params.size()) {
        cx.emit(Severity::Error, "AMG-L011",
                "entity '" + ent.name + "' has no parameter '" + *a.name + "'",
                file, a.value->line, a.value->col,
                "the declaration is " + signatureOf(ent) + " on line " +
                    std::to_string(ent.line));
        continue;
      }
      if (filled[idx])
        cx.emit(Severity::Warning, "AMG-L013",
                "entity '" + ent.name + "': parameter '" + *a.name +
                    "' is bound twice (the last binding wins)",
                file, a.value->line, a.value->col, "drop one of the bindings");
      filled[idx] = true;
      continue;
    }
    if (positional >= ent.params.size()) {
      cx.emit(Severity::Error, "AMG-L010",
              "too many arguments for entity '" + ent.name + "' (takes " +
                  std::to_string(ent.params.size()) + ")",
              file, a.value->line, a.value->col,
              "drop the extra arguments or name them");
      break;
    }
    if (filled[positional])
      cx.emit(Severity::Warning, "AMG-L013",
              "entity '" + ent.name + "': parameter '" +
                  ent.params[positional].name +
                  "' is bound twice (the last binding wins)",
              file, a.value->line, a.value->col,
              "positional arguments fill parameters in declaration order even "
              "when earlier ones were named; name this argument too");
    filled[positional++] = true;
  }

  for (std::size_t i = 0; i < ent.params.size(); ++i) {
    const auto& p = ent.params[i];
    if (filled[i] || p.optional || p.defaultValue) continue;
    cx.emit(Severity::Error, "AMG-L012",
            "entity '" + ent.name + "': required parameter '" + p.name +
                "' missing",
            file, e.line, e.col,
            "pass " + p.name + "=... at the call, or declare it optional as <" +
                p.name + ">");
  }
}

void checkBody(const Context& cx, const std::string& file, const Body& body,
               bool topLevel) {
  walkExprs(body, [&](const Expr& e) {
    if (e.kind != Expr::Kind::Call) return;
    // Entities shadow builtins, exactly as in Interpreter::evalCall.
    if (const EntityDecl* ent = cx.findEntity(e.text))
      return checkEntityCall(cx, file, e, *ent);
    if (const BuiltinSig* sig = lang::findBuiltin(e.text))
      return checkBuiltinCall(cx, file, e, *sig, topLevel);
    // Unknown callee: the symbol pass already reported AMG-L001.
  });
}

}  // namespace

void callPass(Context& cx) {
  for (const Unit& u : cx.units) {
    checkBody(cx, *u.file, u.prog->top, /*topLevel=*/true);
    for (const EntityDecl& ent : u.prog->entities)
      checkBody(cx, *u.file, ent.body, /*topLevel=*/false);
  }
}

}  // namespace amg::analysis::detail
