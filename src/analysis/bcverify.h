// Bytecode verifier + abstract interpreter: the static-analysis gate every
// chunk passes before the VM will run it on the unchecked dispatch path.
//
// Two passes over a compiled chunk (lang/bytecode.h):
//
//  1. Structural (bcverify.cpp): every opcode word is a valid opcode, the
//     operand counts from the AMG_OPCODE_LIST X-macro fit inside the code
//     stream, jump targets land on instruction boundaries in-bounds, every
//     side-table index (constant pool, call sites, variant sites, prebuilt
//     diagnostics, slots) is in range, VARIANT branch ranges are ordered,
//     contiguous-with-their-site and properly nested, and the chunk ends
//     with RET.
//
//  2. Abstract interpretation (absint.cpp): a worklist dataflow over the
//     chunk CFG computing, per program point, the abstract operand stack
//     (depth + number-ness of each entry) and per-slot state
//     (unset / set / numeric).  Stack depth must be consistent at join
//     points and match the X-macro stack effects; slots must be
//     initialized before raw reads; FOR counter/bound pairs must be
//     numeric where FOR_TEST/FOR_INC read them as raw doubles.
//
// Failures are util::Diags with stable AMG-B0xx codes (registry:
// docs/LINT.md, prose: docs/BYTECODE.md).  A chunk that passes gets its
// `verified` bit set by the compiler post-pass (lang/compiler.cpp), which
// is the VM's license to drop per-dispatch bounds checks (lang/vm.cpp).
//
// Layering note: these sources live in src/analysis/ beside the AST
// analyzer but are compiled into amg_lang — the compiler post-pass and the
// chunk-cache admission gate run below the analyzer layer, and amg_analysis
// links amg_lang, so the reverse edge would be a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/bytecode.h"
#include "util/diag.h"

namespace amg::analysis {

/// What the verifier must know about the frame a chunk executes in.
struct ChunkContext {
  bool isEntity = false;     ///< entity body (REQUIRE is only legal here)
  std::size_t paramCount = 0;  ///< slots 0..paramCount-1 start bound
  std::string name;          ///< "top-level" or "ENT Foo" (diag prefix)
};

/// Verdict for one chunk.  `depthIn[offset]` is the abstract stack depth
/// on entry to the instruction starting at `offset` (-1: unreachable or
/// not an instruction start); it is what `amg_lint --dump-bc` renders.
struct ChunkVerification {
  std::vector<util::Diag> diags;
  std::vector<int> depthIn;
  bool ok() const { return diags.empty(); }
};

/// Verify one chunk.  Pure, thread-safe, never throws; at most a handful
/// of diags are reported per chunk (the first failure per offset).
ChunkVerification verifyChunk(const lang::Chunk& c, const ChunkContext& ctx);

/// Verdict for a whole compiled program: the union of every chunk's diags
/// (messages prefixed with the chunk name) plus the per-chunk depth maps.
struct ProgramVerification {
  std::vector<util::Diag> diags;
  std::unordered_map<const lang::Chunk*, std::vector<int>> depths;
  bool ok() const { return diags.empty(); }
};
ProgramVerification verifyProgram(const lang::CompiledProgram& p);

namespace detail {

/// Structural pass output consumed by the abstract interpreter: which
/// offsets start an instruction (index code.size() is the virtual "end"
/// boundary, always legal as a jump/branch target).
struct Boundaries {
  std::vector<std::uint8_t> isStart;  ///< size code.size()+1
};

/// The worklist dataflow (absint.cpp).  Assumes the structural pass ran
/// clean; appends AMG-B02x diags and fills `out.depthIn`.
void analyzeFlow(const lang::Chunk& c, const ChunkContext& ctx,
                 const Boundaries& b, ChunkVerification& out);

}  // namespace detail

}  // namespace amg::analysis
