// Pass 3: technology compatibility.
//
// Layer names are plain strings in the language; the interpreter resolves
// them through tech::Technology::layer(), which throws a DesignRuleError
// on a typo — possibly deep inside a VARIANT, where backtracking silently
// swallows it and the module just "has no feasible variant".  This pass
// checks every layer-name constant against the deck up front.
//
// Constants don't only appear at the builtin call itself: scripts routinely
// route a layer through an entity parameter (ContactRow(layer = "poly")).
// A small fixpoint infers which entity parameters are layer-typed — a
// parameter is layer-typed when its body passes it, as a bare variable,
// into a Layer slot of a builtin or into an already-layer-typed parameter
// of another entity — and call-site constants bound to those parameters
// are validated too.
#include "analysis/internal.h"
#include "tech/tech.h"

namespace amg::analysis::detail {

using lang::Arg;
using lang::Body;
using lang::BuiltinSig;
using lang::EntityDecl;
using lang::Expr;
using lang::SlotType;

namespace {

/// Per-parameter argument expressions at an entity call, bound with the
/// interpreter's rules (named by name, positionals in declaration order).
std::vector<const Expr*> bindEntityArgs(const Expr& call, const EntityDecl& ent) {
  std::vector<const Expr*> bound(ent.params.size(), nullptr);
  std::size_t positional = 0;
  for (const Arg& a : call.args) {
    if (a.name) {
      for (std::size_t i = 0; i < ent.params.size(); ++i)
        if (*a.name == ent.params[i].name) {
          bound[i] = a.value.get();
          break;
        }
      continue;
    }
    if (positional < bound.size()) bound[positional++] = a.value.get();
  }
  return bound;
}

/// Which parameters of each entity end up used as layer names.
using LayerParams = std::unordered_map<std::string, std::vector<bool>>;

LayerParams inferLayerParams(const Context& cx) {
  LayerParams lp;
  for (const auto& [name, decl] : cx.entities)
    lp[name].assign(decl->params.size(), false);

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, decl] : cx.entities) {
      std::vector<bool>& mine = lp[name];
      const auto markVar = [&](const Expr* arg) {
        if (!arg || arg->kind != Expr::Kind::Var) return;
        for (std::size_t i = 0; i < decl->params.size(); ++i)
          if (decl->params[i].name == arg->text && !mine[i]) {
            mine[i] = true;
            changed = true;
          }
      };
      walkExprs(decl->body, [&](const Expr& e) {
        if (e.kind != Expr::Kind::Call) return;
        if (const EntityDecl* callee = cx.findEntity(e.text)) {
          const std::vector<bool>& theirs = lp[callee->name];
          const auto bound = bindEntityArgs(e, *callee);
          for (std::size_t i = 0; i < bound.size(); ++i)
            if (theirs[i]) markVar(bound[i]);
          return;
        }
        const BuiltinSig* sig = lang::findBuiltin(e.text);
        if (!sig) return;
        const BoundCall b = bindCall(e, *sig);
        for (std::size_t i = 0; i < sig->slots.size(); ++i)
          if (sig->slots[i].type == SlotType::Layer) markVar(b.slotArgs[i]);
        if (sig->variadic && sig->variadicType == SlotType::Layer)
          for (const Expr* x : b.extras) markVar(x);
      });
    }
  }
  return lp;
}

struct DeckInfo {
  const tech::Technology* tech;
  std::string layerList;  // for the hint
};

void checkLayerConst(const Context& cx, const DeckInfo& deck,
                     const std::string& file, const Expr& arg,
                     const std::string& where) {
  if (arg.kind != Expr::Kind::String) return;
  if (deck.tech->findLayer(arg.text)) return;
  cx.emit(Severity::Error, "AMG-L020",
          "unknown layer '" + arg.text + "' (deck '" + deck.tech->name() +
              "') " + where,
          file, arg.line, arg.col, "the deck's layers are " + deck.layerList);
}

void checkBody(const Context& cx, const DeckInfo& deck, const LayerParams& lp,
               const std::string& file, const Body& body) {
  walkExprs(body, [&](const Expr& e) {
    if (e.kind != Expr::Kind::Call) return;
    if (const EntityDecl* ent = cx.findEntity(e.text)) {
      const std::vector<bool>& theirs = lp.at(ent->name);
      const auto bound = bindEntityArgs(e, *ent);
      for (std::size_t i = 0; i < bound.size(); ++i)
        if (theirs[i] && bound[i])
          checkLayerConst(cx, deck, file, *bound[i],
                          "passed to parameter '" + ent->params[i].name +
                              "' of entity '" + ent->name + "'");
      return;
    }
    const BuiltinSig* sig = lang::findBuiltin(e.text);
    if (!sig) return;
    const BoundCall b = bindCall(e, *sig);
    for (std::size_t i = 0; i < sig->slots.size(); ++i) {
      if (sig->slots[i].type != SlotType::Layer || !b.slotArgs[i]) continue;
      const Expr& arg = *b.slotArgs[i];
      checkLayerConst(cx, deck, file, arg,
                      "in " + std::string(sig->name) + "()");
      // minwidth() of a layer that has no width rule returns nothing
      // useful — the runtime throws AMG-TECH when asked.
      if (std::string_view(sig->name) == "minwidth" &&
          arg.kind == Expr::Kind::String) {
        if (const auto layer = deck.tech->findLayer(arg.text);
            layer && !deck.tech->findMinWidth(*layer))
          cx.emit(Severity::Warning, "AMG-L021",
                  "layer '" + arg.text + "' has no minimum-width rule in deck '" +
                      deck.tech->name() + "'; minwidth() will fail at runtime",
                  file, arg.line, arg.col,
                  "marker layers carry no width rule; use a drawn layer here");
      }
    }
    if (sig->variadic && sig->variadicType == SlotType::Layer)
      for (const Expr* x : b.extras)
        if (x)
          checkLayerConst(cx, deck, file, *x,
                          "in " + std::string(sig->name) + "()");
  });
}

}  // namespace

void techPass(Context& cx) {
  if (!cx.opt.tech) return;  // no deck, nothing to validate against

  DeckInfo deck{cx.opt.tech, {}};
  for (std::size_t l = 0; l < cx.opt.tech->layerCount(); ++l) {
    if (!deck.layerList.empty()) deck.layerList += ", ";
    deck.layerList += cx.opt.tech->info(static_cast<tech::LayerId>(l)).name;
  }

  const LayerParams lp = inferLayerParams(cx);
  for (const Unit& u : cx.units) {
    checkBody(cx, deck, lp, *u.file, u.prog->top);
    for (const EntityDecl& ent : u.prog->entities)
      checkBody(cx, deck, lp, *u.file, ent.body);
  }
}

}  // namespace amg::analysis::detail
