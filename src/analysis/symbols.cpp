// Pass 1: symbol resolution.
//
// What "defined" means here mirrors the interpreter exactly: entities may
// be declared before or after use (registration precedes execution),
// entities shadow builtins, and variable lookup is *dynamic* — an entity
// body can read a name assigned by any caller up the instantiation chain.
// The pass is therefore conservative about variables: a read is an error
// only when the name is assigned nowhere in the whole program (AMG-L003);
// a name that exists only in some other scope is a warning (AMG-L009),
// because the module then silently depends on who calls it.
#include <map>

#include "analysis/internal.h"

namespace amg::analysis::detail {

using lang::Body;
using lang::EntityDecl;
using lang::Expr;
using lang::Stmt;

namespace {

/// Variable reads in `body` plus, for entities, the default-value
/// expressions of the declaration (a later parameter's default may read an
/// earlier parameter).
std::unordered_set<std::string> readNames(const Body& body,
                                          const EntityDecl* decl) {
  std::unordered_set<std::string> reads;
  const auto visit = [&](const Expr& e) {
    if (e.kind == Expr::Kind::Var) reads.insert(e.text);
  };
  walkExprs(body, visit);
  if (decl)
    for (const auto& p : decl->params)
      if (p.defaultValue) walkExpr(*p.defaultValue, visit);
  return reads;
}

/// First assignment of `name` in `body` (for the unused-local location).
const Stmt* firstAssign(const Body& body, const std::string& name) {
  const Stmt* found = nullptr;
  walkStmts(body, [&](const Stmt& s) {
    if (!found && s.kind == Stmt::Kind::Assign && s.name == name) found = &s;
  });
  return found;
}

void checkScope(const Context& cx, const Body& body, const EntityDecl* decl,
                const std::string& file) {
  // The names this scope can resolve without dynamic scoping: its own
  // parameters, anything it assigns (before or after the read — flow
  // order is the flow pass's business), and the top-level globals.
  std::unordered_set<std::string> local = assignedNames(body);
  if (decl)
    for (const auto& p : decl->params) local.insert(p.name);

  walkExprs(body, [&](const Expr& e) {
    if (e.kind != Expr::Kind::Var) return;
    if (local.count(e.text) || cx.globals.count(e.text)) return;
    if (cx.assignedAnywhere.count(e.text)) {
      cx.emit(Severity::Warning, "AMG-L009",
              "variable '" + e.text + "' is not defined in this " +
                  (decl ? "entity" : "scope") +
                  "; it resolves only through the caller's scope at runtime",
              file, e.line, e.col,
              "pass it as a parameter instead of relying on dynamic scoping");
    } else {
      cx.emit(Severity::Error, "AMG-L003",
              "undefined variable '" + e.text + "'", file, e.line, e.col,
              "assign it first, or declare it as an entity parameter");
    }
  });

  if (!decl || !cx.opt.warnUnused) return;
  const std::unordered_set<std::string> reads = readNames(body, decl);

  for (const auto& p : decl->params)
    if (!reads.count(p.name))
      cx.emit(Severity::Warning, "AMG-L005",
              "parameter '" + p.name + "' of entity '" + decl->name +
                  "' is never used",
              file, p.line ? p.line : decl->line, p.col,
              "remove it, or use it in the body");

  // Unused locals: assigned in the body, never read.  FOR variables are
  // exempt (a loop used purely for repetition is idiomatic), and so are
  // names that exist as globals — assigning those mutates the global, a
  // visible effect.
  std::unordered_set<std::string> loopVars;
  walkStmts(body, [&](const Stmt& s) {
    if (s.kind == Stmt::Kind::For) loopVars.insert(s.name);
  });
  for (const std::string& name : assignedNames(body)) {
    if (reads.count(name) || loopVars.count(name) || cx.globals.count(name))
      continue;
    const Stmt* at = firstAssign(body, name);
    cx.emit(Severity::Warning, "AMG-L006",
            "local variable '" + name + "' in entity '" + decl->name +
                "' is assigned but never used",
            file, at ? at->line : decl->line, at ? at->col : 0,
            "remove the assignment, or use the value");
  }
}

/// Call-graph cycle detection: recursion is legal (the interpreter caps
/// depth at 64) but almost never intended in layout code, so a cycle is a
/// warning pinned to the entity that closes it.
void checkCycles(const Context& cx) {
  // entity -> entities it calls (sorted for deterministic reporting).
  std::map<std::string, std::vector<std::string>> graph;
  std::map<std::string, const EntityDecl*> decls;
  std::map<std::string, const std::string*> files;
  for (const Unit& u : cx.units) {
    for (const EntityDecl& ent : u.prog->entities) {
      if (cx.entities.at(ent.name) != &ent) continue;  // shadowed decl
      decls[ent.name] = &ent;
      files[ent.name] = u.file;
      auto& edges = graph[ent.name];
      walkExprs(ent.body, [&](const Expr& e) {
        if (e.kind == Expr::Kind::Call && cx.entities.count(e.text))
          edges.push_back(e.text);
      });
    }
  }

  enum class Color { White, Grey, Black };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;

  const std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = Color::Grey;
    stack.push_back(n);
    for (const std::string& m : graph[n]) {
      if (color[m] == Color::Black) continue;
      if (color[m] == Color::Grey) {
        // Reconstruct the cycle m -> ... -> n -> m.
        std::string chain = m;
        bool in = false;
        for (const std::string& s : stack) {
          if (s == m) in = true;
          if (in && s != m) chain += " -> " + s;
        }
        chain += " -> " + m;
        const EntityDecl* d = decls[n];
        cx.emit(Severity::Warning, "AMG-L007",
                "entity '" + n + "' participates in a call cycle (" + chain + ")",
                *files[n], d->line, d->col,
                "recursion depth is capped at 64 (AMG-INTERP-006); make sure "
                "a conditional terminates it");
        continue;
      }
      dfs(m);
    }
    stack.pop_back();
    color[n] = Color::Black;
  };
  for (const auto& [name, edges] : graph) {
    (void)edges;
    if (color[name] == Color::White) dfs(name);
  }
}

}  // namespace

void symbolPass(Context& cx) {
  // Undefined entity/function: any call that is neither a declared entity
  // nor a builtin fails at runtime with AMG-INTERP-002.
  for (const Unit& u : cx.units) {
    const auto checkCalls = [&](const Body& body) {
      walkExprs(body, [&](const Expr& e) {
        if (e.kind != Expr::Kind::Call) return;
        if (cx.entities.count(e.text) || lang::findBuiltin(e.text)) return;
        cx.emit(Severity::Error, "AMG-L001",
                "unknown entity or function '" + e.text + "'", *u.file, e.line,
                e.col,
                "entities must be declared with ENT (before or after use); "
                "builtins are listed in docs/LANGUAGE.md");
      });
    };
    checkCalls(u.prog->top);
    for (const EntityDecl& ent : u.prog->entities) checkCalls(ent.body);

    checkScope(cx, u.prog->top, nullptr, *u.file);
    for (const EntityDecl& ent : u.prog->entities)
      checkScope(cx, ent.body, &ent, *u.file);
  }

  checkCycles(cx);
}

}  // namespace amg::analysis::detail
