// Pass 4: constant folding and interval analysis.
//
// A tiny abstract interpreter over the statement language: every variable
// holds an abstract value (for numbers, an interval [lo, hi]) plus an
// assignment state (no / maybe / yes).  Statements update an environment;
// IF joins its arms; FOR widens whatever the body assigns; VARIANT
// analyzes each branch against the same entry state, mirroring the
// interpreter's snapshot/rollback.
//
// This answers reachability questions the runtime only answers the slow
// way: a condition that can never be false (AMG-L030/L031), a FOR loop
// whose trip count is never positive (AMG-L032), a VARIANT branch that
// raises ERROR on every path (AMG-L033), a branch that is never even
// tried because an earlier one cannot fail (AMG-L034), a division whose
// divisor folds to exactly zero (AMG-L035), and a variable read before
// any path has assigned it (AMG-L004).
//
// The analysis also *suppresses*: statements proven unreachable (the dead
// arm of a constant IF, the body of a zero-trip FOR) are not analyzed, so
// they produce no secondary findings.
#include <cmath>
#include <limits>
#include <map>

#include "analysis/internal.h"

namespace amg::analysis::detail {

using lang::Body;
using lang::EntityDecl;
using lang::Expr;
using lang::Stmt;
using lang::Tok;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// The interpreter's FOR epsilon: the loop runs while i <= hi + 1e-9.
constexpr double kForEps = 1e-9;

/// Abstract value: a type tag plus, for numbers, an interval.
struct AbsVal {
  enum class Kind { Any, Num, Str, Dir, Obj };
  Kind kind = Kind::Any;
  double lo = -kInf, hi = kInf;  // meaningful when kind == Num
  bool maybeUnset = false;       // an optional <param> that may stay unset

  static AbsVal any() { return {}; }
  static AbsVal num(double lo, double hi) {
    return {Kind::Num, lo, hi, false};
  }
  static AbsVal exactly(double v) { return num(v, v); }
  static AbsVal of(Kind k) { return {k, -kInf, kInf, false}; }
};

enum class Assigned : std::uint8_t { Maybe, Yes };  // absent from env = No

struct VarState {
  AbsVal val;
  Assigned assigned = Assigned::Yes;
};

using Env = std::map<std::string, VarState>;

AbsVal joinVal(const AbsVal& a, const AbsVal& b) {
  AbsVal r;
  if (a.kind == b.kind) {
    r.kind = a.kind;
    if (r.kind == AbsVal::Kind::Num) {
      r.lo = std::min(a.lo, b.lo);
      r.hi = std::max(a.hi, b.hi);
    }
  }  // else Kind::Any
  r.maybeUnset = a.maybeUnset || b.maybeUnset;
  return r;
}

/// Merge the environments of two paths that both reach the join point.
Env joinEnv(const Env& a, const Env& b) {
  Env r;
  for (const auto& [name, sa] : a) {
    const auto it = b.find(name);
    if (it == b.end()) {
      r[name] = VarState{sa.val, Assigned::Maybe};
    } else {
      r[name] = VarState{joinVal(sa.val, it->second.val),
                         (sa.assigned == Assigned::Yes &&
                          it->second.assigned == Assigned::Yes)
                             ? Assigned::Yes
                             : Assigned::Maybe};
    }
  }
  for (const auto& [name, sb] : b)
    if (!a.count(name)) r[name] = VarState{sb.val, Assigned::Maybe};
  return r;
}

// NaN-free interval endpoint arithmetic (0 * inf is pinned to 0, which is
// always inside the true result interval for the endpoint sets we form).
double mulSafe(double a, double b) {
  if (a == 0 || b == 0) return 0;
  return a * b;
}

AbsVal fromCandidates(std::initializer_list<double> cs) {
  double lo = kInf, hi = -kInf;
  for (double c : cs) {
    if (std::isnan(c)) continue;
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  if (lo > hi) return AbsVal::any();
  return AbsVal::num(lo, hi);
}

/// How a statement sequence can end.
struct FlowExit {
  bool fallthrough = true;  ///< some path reaches the end
  bool mayFail = false;     ///< some path may raise a DesignRuleError
};

/// Abstract interpretation of one scope (the top-level body or one entity
/// body).
class Flow {
 public:
  Flow(const Context& cx, const std::string& file, const Body& body,
       const EntityDecl* decl)
      : cx_(cx), file_(file), topLevel_(decl == nullptr),
        local_(assignedNames(body)) {
    if (decl)
      for (const auto& p : decl->params) {
        AbsVal v = AbsVal::any();
        v.maybeUnset = p.optional;  // <p> may stay unset; isset(p) is 0 or 1
        env_[p.name] = VarState{v, Assigned::Yes};
      }
  }

  void run(const Body& body) { (void)execBody(body, env_); }

 private:
  const Context& cx_;
  const std::string& file_;
  const bool topLevel_;
  Env env_;
  std::unordered_set<std::string> local_;          // names this scope assigns
  std::unordered_set<std::string> reportedUnset_;  // one L004 per name

  // --- expressions --------------------------------------------------------

  AbsVal eval(const Expr& e, Env& env, FlowExit& exit) {
    switch (e.kind) {
      case Expr::Kind::Number: return AbsVal::exactly(e.number);
      case Expr::Kind::String: return AbsVal::of(AbsVal::Kind::Str);
      case Expr::Kind::Dir: return AbsVal::of(AbsVal::Kind::Dir);
      case Expr::Kind::Var: return evalVar(e, env);
      case Expr::Kind::Binary: return evalBinary(e, env, exit);
      case Expr::Kind::Call: return evalCall(e, env, exit);
    }
    return AbsVal::any();
  }

  AbsVal evalVar(const Expr& e, Env& env) {
    const auto it = env.find(e.text);
    if (it != env.end()) return it->second.val;
    // Not assigned on this path.  If the scope assigns it later (and no
    // outer scope can plausibly supply it), the read sees an unset value.
    if (local_.count(e.text) && (topLevel_ || !cx_.globals.count(e.text)) &&
        reportedUnset_.insert(e.text).second) {
      cx_.emit(Severity::Warning, "AMG-L004",
               "variable '" + e.text +
                   "' may be read before it is assigned in this scope",
               file_, e.line, e.col,
               topLevel_
                   ? "move the assignment above this use"
                   : "move the assignment above this use (or pass the value "
                     "in as a parameter; today only a caller's scope could "
                     "supply it here)");
    }
    env[e.text] = VarState{AbsVal::any(), Assigned::Maybe};
    return AbsVal::any();
  }

  AbsVal evalBinary(const Expr& e, Env& env, FlowExit& exit) {
    const AbsVal a = eval(*e.lhs, env, exit);
    const AbsVal b = eval(*e.rhs, env, exit);
    // String concatenation is the only non-numeric operator use.
    if (a.kind == AbsVal::Kind::Str || b.kind == AbsVal::Kind::Str)
      return e.op == Tok::Plus ? AbsVal::of(AbsVal::Kind::Str) : AbsVal::any();
    if (a.kind != AbsVal::Kind::Num || b.kind != AbsVal::Kind::Num) {
      if (e.op == Tok::Slash) checkDivisor(e, b);
      return isComparison(e.op) ? AbsVal::num(0, 1) : AbsVal::any();
    }
    switch (e.op) {
      case Tok::Plus: return fromCandidates({a.lo + b.lo, a.hi + b.hi});
      case Tok::Minus: return fromCandidates({a.lo - b.hi, a.hi - b.lo});
      case Tok::Star:
        return fromCandidates({mulSafe(a.lo, b.lo), mulSafe(a.lo, b.hi),
                               mulSafe(a.hi, b.lo), mulSafe(a.hi, b.hi)});
      case Tok::Slash: {
        checkDivisor(e, b);
        if (b.lo <= 0 && b.hi >= 0) return AbsVal::any();  // divisor spans 0
        return fromCandidates(
            {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi});
      }
      case Tok::Lt: return decide(a.hi < b.lo, a.lo >= b.hi);
      case Tok::Gt: return decide(a.lo > b.hi, a.hi <= b.lo);
      case Tok::Le: return decide(a.hi <= b.lo, a.lo > b.hi);
      case Tok::Ge: return decide(a.lo >= b.hi, a.hi < b.lo);
      case Tok::EqEq:
        return decide(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
                      a.hi < b.lo || a.lo > b.hi);
      case Tok::Ne:
        return decide(a.hi < b.lo || a.lo > b.hi,
                      a.lo == a.hi && b.lo == b.hi && a.lo == b.lo);
      default: return AbsVal::any();
    }
  }

  static bool isComparison(Tok op) {
    return op == Tok::Lt || op == Tok::Gt || op == Tok::Le || op == Tok::Ge ||
           op == Tok::EqEq || op == Tok::Ne;
  }

  /// Comparison result as an interval: provably-true / provably-false /
  /// undecided.
  static AbsVal decide(bool alwaysTrue, bool alwaysFalse) {
    if (alwaysTrue) return AbsVal::exactly(1);
    if (alwaysFalse) return AbsVal::exactly(0);
    return AbsVal::num(0, 1);
  }

  void checkDivisor(const Expr& e, const AbsVal& b) {
    if (b.kind == AbsVal::Kind::Num && b.lo == 0 && b.hi == 0)
      cx_.emit(Severity::Error, "AMG-L035", "division by zero", file_,
               e.rhs->line, e.rhs->col,
               "the divisor is the constant 0 on every path; the runtime "
               "raises AMG-INTERP-008 here");
  }

  AbsVal evalCall(const Expr& e, Env& env, FlowExit& exit) {
    // isset() is the legal way to probe an unset variable — fold it before
    // evaluating arguments, so the probe itself never reports AMG-L004.
    if (e.text == "isset" && !cx_.findEntity(e.text)) return foldIsset(e, env);

    std::vector<AbsVal> args;
    args.reserve(e.args.size());
    for (const lang::Arg& a : e.args) args.push_back(eval(*a.value, env, exit));

    if (cx_.findEntity(e.text)) {
      // Instantiation can violate a design rule anywhere inside.
      exit.mayFail = true;
      return AbsVal::of(AbsVal::Kind::Obj);
    }
    const lang::BuiltinSig* sig = lang::findBuiltin(e.text);
    if (!sig) return AbsVal::any();
    // Geometry raises design-rule errors; so does any layer lookup with a
    // name the deck might not know (minwidth of a computed name).
    if (sig->geometry || std::string_view(sig->name) == "minwidth")
      exit.mayFail = true;

    const std::string_view f = sig->name;
    if (f == "floor" && !args.empty() && args[0].kind == AbsVal::Kind::Num)
      return fromCandidates({std::floor(args[0].lo), std::floor(args[0].hi)});
    if ((f == "min" || f == "max") && args.size() >= 2 &&
        args[0].kind == AbsVal::Kind::Num && args[1].kind == AbsVal::Kind::Num)
      return f == "min" ? AbsVal::num(std::min(args[0].lo, args[1].lo),
                                      std::min(args[0].hi, args[1].hi))
                        : AbsVal::num(std::max(args[0].lo, args[1].lo),
                                      std::max(args[0].hi, args[1].hi));
    if (f == "area" || f == "width" || f == "height" || f == "minwidth")
      return AbsVal::num(0, kInf);
    if (f == "mirrorx" || f == "mirrory" || f == "rot180")
      return AbsVal::of(AbsVal::Kind::Obj);
    return AbsVal::any();
  }

  /// isset(x): 0 when x is on no path, 1 when definitely assigned, [0,1]
  /// when only some paths (or an optional parameter / a caller) supply it.
  AbsVal foldIsset(const Expr& e, const Env& env) {
    if (e.args.size() != 1 || e.args[0].value->kind != Expr::Kind::Var)
      return AbsVal::num(0, 1);
    const std::string& name = e.args[0].value->text;
    const auto it = env.find(name);
    if (it == env.end()) return AbsVal::num(0, 1);
    if (it->second.assigned == Assigned::Yes && !it->second.val.maybeUnset)
      return AbsVal::exactly(1);
    return AbsVal::num(0, 1);
  }

  // --- statements -----------------------------------------------------------

  FlowExit execBody(const Body& body, Env& env) {
    FlowExit exit;
    for (const Stmt& s : body) {
      const FlowExit r = execStmt(s, env);
      exit.mayFail = exit.mayFail || r.mayFail;
      if (!r.fallthrough) {
        // Nothing after this statement is reachable; don't analyze it.
        exit.fallthrough = false;
        return exit;
      }
    }
    return exit;
  }

  FlowExit execStmt(const Stmt& s, Env& env) {
    FlowExit exit;
    switch (s.kind) {
      case Stmt::Kind::Assign: {
        AbsVal v = eval(*s.expr, env, exit);
        v.maybeUnset = false;
        env[s.name] = VarState{v, Assigned::Yes};
        return exit;
      }
      case Stmt::Kind::ExprStmt:
        (void)eval(*s.expr, env, exit);
        return exit;
      case Stmt::Kind::Error:
        (void)eval(*s.expr, env, exit);
        exit.fallthrough = false;
        exit.mayFail = true;
        return exit;
      case Stmt::Kind::If: return execIf(s, env);
      case Stmt::Kind::For: return execFor(s, env);
      case Stmt::Kind::Variant: return execVariant(s, env);
    }
    return exit;
  }

  FlowExit execIf(const Stmt& s, Env& env) {
    FlowExit exit;
    const AbsVal c = eval(*s.expr, env, exit);
    // Runtime truth is `value != 0`.
    const bool alwaysTrue =
        c.kind == AbsVal::Kind::Num && (c.lo > 0 || c.hi < 0);
    const bool alwaysFalse = c.kind == AbsVal::Kind::Num && c.lo == 0 && c.hi == 0;

    if (alwaysTrue)
      cx_.emit(Severity::Warning, "AMG-L030",
               "condition is always true; the ELSE branch never runs", file_,
               s.expr->line, s.expr->col,
               "every value this expression can take is nonzero");
    if (alwaysFalse)
      cx_.emit(Severity::Warning, "AMG-L031",
               "condition is always false; the THEN branch never runs", file_,
               s.expr->line, s.expr->col,
               "this expression folds to 0 on every path");

    if (alwaysTrue || alwaysFalse) {
      // Only the live arm is analyzed; the dead one is suppressed.
      const FlowExit r = execBody(alwaysTrue ? s.body : s.elseBody, env);
      return FlowExit{r.fallthrough, exit.mayFail || r.mayFail};
    }
    Env thenEnv = env;
    Env elseEnv = env;
    const FlowExit rt = execBody(s.body, thenEnv);
    const FlowExit re = execBody(s.elseBody, elseEnv);
    exit.mayFail = exit.mayFail || rt.mayFail || re.mayFail;
    exit.fallthrough = rt.fallthrough || re.fallthrough;
    if (rt.fallthrough && re.fallthrough)
      env = joinEnv(thenEnv, elseEnv);
    else if (rt.fallthrough)
      env = std::move(thenEnv);
    else if (re.fallthrough)
      env = std::move(elseEnv);
    return exit;
  }

  FlowExit execFor(const Stmt& s, Env& env) {
    FlowExit exit;
    const AbsVal lo = eval(*s.expr, env, exit);
    const AbsVal hi = eval(*s.expr2, env, exit);

    if (lo.kind == AbsVal::Kind::Num && hi.kind == AbsVal::Kind::Num &&
        lo.lo > hi.hi + kForEps) {
      cx_.emit(Severity::Warning, "AMG-L032",
               "FOR loop never executes (lower bound always exceeds upper)",
               file_, s.line, s.col,
               "the body is dead code; the loop runs while var <= upper");
      return exit;  // body suppressed, env untouched
    }

    // Widen everything the body assigns: after (or during) any iteration
    // the exact value is unknown, and the body may run zero times.
    for (const std::string& name : assignedNames(s.body)) {
      const auto it = env.find(name);
      if (it == env.end())
        env[name] = VarState{AbsVal::any(), Assigned::Maybe};
      else
        it->second.val = AbsVal::any();
    }
    env[s.name] =
        VarState{lo.kind == AbsVal::Kind::Num && hi.kind == AbsVal::Kind::Num
                     ? AbsVal::num(lo.lo, std::max(lo.hi, hi.hi + 1))
                     : AbsVal::any(),
                 Assigned::Yes};

    const FlowExit r = execBody(s.body, env);
    exit.mayFail = exit.mayFail || r.mayFail;
    // One abstract iteration isn't the loop-exit state; re-widen.
    for (const std::string& name : assignedNames(s.body)) {
      const auto it = env.find(name);
      if (it != env.end()) it->second.val = AbsVal::any();
    }
    env[s.name].val = AbsVal::any();
    return exit;
  }

  FlowExit execVariant(const Stmt& s, Env& env) {
    FlowExit exit;
    std::vector<Env> outs;
    std::vector<FlowExit> results;
    results.reserve(s.branches.size());
    int infallible = -1;  // first branch that can neither fail nor ERROR
    for (std::size_t i = 0; i < s.branches.size(); ++i) {
      Env b = env;  // each branch starts from the snapshot, like the runtime
      const FlowExit r = execBody(s.branches[i], b);
      results.push_back(r);
      if (r.fallthrough) outs.push_back(std::move(b));

      const int line = s.branches[i].empty() ? s.line : s.branches[i].front().line;
      const int col = s.branches[i].empty() ? s.col : s.branches[i].front().col;
      if (!r.fallthrough)
        cx_.emit(Severity::Warning, "AMG-L033",
                 "VARIANT branch " + std::to_string(i + 1) +
                     " can never succeed (every path raises ERROR)",
                 file_, line, col,
                 "the branch always rolls back; remove it or guard the ERROR");
      if (infallible < 0 && r.fallthrough && !r.mayFail)
        infallible = static_cast<int>(i);
    }

    // A non-rated VARIANT commits to the first branch that completes; if
    // branch k cannot fail, branches after k are never tried.  BEST
    // VARIANT rates every feasible branch, so all of them run.
    if (!s.rated && infallible >= 0 &&
        static_cast<std::size_t>(infallible) + 1 < s.branches.size()) {
      const Body& next = s.branches[static_cast<std::size_t>(infallible) + 1];
      cx_.emit(Severity::Warning, "AMG-L034",
               "unreachable VARIANT branch: branch " +
                   std::to_string(infallible + 1) +
                   " always succeeds, so later branches are never tried",
               file_, next.empty() ? s.line : next.front().line,
               next.empty() ? s.col : next.front().col,
               "reorder the branches, or make the earlier one fallible");
    }

    if (outs.empty()) {
      // Every branch always fails: the VARIANT itself always throws.
      exit.fallthrough = false;
      exit.mayFail = true;
      return exit;
    }
    Env joined = std::move(outs.front());
    for (std::size_t i = 1; i < outs.size(); ++i) joined = joinEnv(joined, outs[i]);
    env = std::move(joined);
    // The whole statement can fail unless some reachable branch cannot.
    exit.mayFail = infallible < 0;
    return exit;
  }
};

}  // namespace

void flowPass(Context& cx) {
  for (const Unit& u : cx.units) {
    {
      Flow f(cx, *u.file, u.prog->top, nullptr);
      f.run(u.prog->top);
    }
    for (const EntityDecl& ent : u.prog->entities) {
      if (cx.entities.at(ent.name) != &ent) continue;  // shadowed: dead code
      Flow f(cx, *u.file, ent.body, &ent);
      f.run(ent.body);
    }
  }
}

}  // namespace amg::analysis::detail
