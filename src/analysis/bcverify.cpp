// Structural half of the bytecode verifier (see bcverify.h): decode the
// code stream against the X-macro operand counts, bounds-check every
// side-table index, and validate VARIANT site geometry.  The dataflow half
// lives in absint.cpp and only runs when the structure is sound.
#include "analysis/bcverify.h"

#include <algorithm>
#include <string>

#include "lang/builtins.h"

namespace amg::analysis {

namespace {

using lang::Chunk;
using lang::Op;
using lang::VariantSite;

/// Cap per chunk: a badly corrupted stream decodes into garbage at every
/// offset; the first few findings carry all the signal.
constexpr std::size_t kMaxDiags = 16;

class StructuralPass {
 public:
  StructuralPass(const Chunk& c, const ChunkContext& ctx,
                 ChunkVerification& out)
      : c_(c), ctx_(ctx), out_(out) {
    b_.isStart.assign(c.code.size() + 1, 0);
    b_.isStart[c.code.size()] = 1;  // the virtual end boundary
  }

  /// Returns the boundary map when the stream decoded cleanly enough for
  /// the dataflow pass to trust it.
  bool run(detail::Boundaries* boundaries) {
    metadata();
    const bool decoded = decode();
    if (decoded) {
      for (std::uint32_t at : starts_) instruction(at);
      variantNesting();
    }
    *boundaries = b_;
    return decoded && out_.diags.empty();
  }

 private:
  void diag(std::uint32_t offset, const char* code, std::string msg,
            std::string hint = "") {
    if (out_.diags.size() >= kMaxDiags) return;
    const lang::LineInfo li = c_.lineAt(offset);
    out_.diags.push_back(util::Diag{
        code,
        "bytecode verify: " + ctx_.name + "+" + std::to_string(offset) + ": " +
            std::move(msg),
        {"", li.line, li.col},
        std::move(hint)});
  }

  // --- chunk metadata ------------------------------------------------------

  void metadata() {
    if (c_.slotNames.size() > c_.slotCount)
      diag(0, "AMG-B014",
           "chunk metadata inconsistent: " + std::to_string(c_.slotNames.size()) +
               " named slots but slotCount " + std::to_string(c_.slotCount));
    if (ctx_.isEntity && ctx_.paramCount > c_.slotNames.size())
      diag(0, "AMG-B014",
           "chunk metadata inconsistent: " + std::to_string(ctx_.paramCount) +
               " parameters but only " + std::to_string(c_.slotNames.size()) +
               " named slots");
  }

  // --- instruction stream decode -------------------------------------------

  bool decode() {
    const std::size_t n = c_.code.size();
    if (n == 0) {
      diag(0, "AMG-B012", "empty chunk (compiled chunks always end with RET)");
      return false;
    }
    std::uint32_t at = 0;
    Op last = Op::RET;
    while (at < n) {
      const std::uint32_t w = c_.code[at];
      if (w >= lang::kOpCount) {
        diag(at, "AMG-B001",
             "invalid opcode word " + std::to_string(w) + " (opcodes are 0.." +
                 std::to_string(lang::kOpCount - 1) + ")");
        return false;
      }
      const Op o = static_cast<Op>(w);
      const auto operands = static_cast<std::uint32_t>(lang::opOperands(o));
      if (at + 1 + operands > n) {
        diag(at, "AMG-B002",
             std::string("truncated instruction: ") + lang::opName(o) +
                 " needs " + std::to_string(operands) +
                 " operand word(s) past offset " + std::to_string(at) +
                 " but the chunk ends at " + std::to_string(n));
        return false;
      }
      b_.isStart[at] = 1;
      starts_.push_back(at);
      if (o == Op::VARIANT) variantAt_.emplace_back(at, c_.code[at + 1]);
      last = o;
      at += 1 + operands;
    }
    if (last != Op::RET) {
      diag(static_cast<std::uint32_t>(n), "AMG-B012",
           "chunk does not end with RET");
      return false;
    }
    return true;
  }

  // --- per-instruction operand validation ----------------------------------

  bool boundary(std::uint32_t t) const {
    return t <= c_.code.size() && b_.isStart[t];
  }

  void jumpTarget(std::uint32_t at, std::uint32_t t) {
    if (t >= c_.code.size()) {
      // Jumping exactly to the end is representable but the compiler never
      // emits it (RET terminates every path), so >= is the strict bound.
      diag(at, "AMG-B003",
           "jump target " + std::to_string(t) + " out of bounds (code size " +
               std::to_string(c_.code.size()) + ")");
    } else if (!b_.isStart[t]) {
      diag(at, "AMG-B004",
           "jump target " + std::to_string(t) +
               " is not on an instruction boundary");
    }
  }

  void constIndex(std::uint32_t at, std::uint32_t k, bool wantString) {
    if (k >= c_.constants.size()) {
      diag(at, "AMG-B005",
           "constant index " + std::to_string(k) + " out of bounds (pool size " +
               std::to_string(c_.constants.size()) + ")");
      return;
    }
    if (wantString && c_.constants[k].kind() != lang::Value::Kind::String)
      diag(at, "AMG-B006",
           "name operand (constant " + std::to_string(k) +
               ") is not a string constant");
  }

  void slotIndex(std::uint32_t at, std::uint32_t s, std::uint32_t span = 1) {
    if (s + span > c_.slotCount)
      diag(at, "AMG-B010",
           "slot index " + std::to_string(s + span - 1) +
               " out of bounds (slotCount " + std::to_string(c_.slotCount) +
               ")");
  }

  void instruction(std::uint32_t at) {
    const Op o = static_cast<Op>(c_.code[at]);
    const std::uint32_t* a = c_.code.data() + at + 1;
    switch (o) {
      case Op::CONST: constIndex(at, a[0], false); break;
      case Op::LOAD_DYN:
      case Op::LOAD_GLOBAL:
      case Op::STORE_GLOBAL: constIndex(at, a[0], true); break;
      case Op::LOAD_SLOT:
      case Op::STORE_SLOT: slotIndex(at, a[0]); break;
      case Op::LOAD_LOCAL:
      case Op::STORE_LOCAL:
        // The unbound-slot fallback resolves by name (dynamic scoping), so
        // these must address a *named* slot, not a hidden temporary.
        slotIndex(at, a[0]);
        if (a[0] < c_.slotCount && a[0] >= c_.slotNames.size())
          diag(at, "AMG-B010",
               "slot index " + std::to_string(a[0]) +
                   " addresses a hidden temporary (named slots are 0.." +
                   std::to_string(c_.slotNames.size()) + ")");
        break;
      case Op::JUMP:
      case Op::JF: jumpTarget(at, a[0]); break;
      case Op::JSET:
        slotIndex(at, a[0]);
        jumpTarget(at, a[1]);
        break;
      case Op::FOR_TEST:
      case Op::FOR_INC:
        slotIndex(at, a[0], 2);  // counter + adjacent bound
        jumpTarget(at, a[1]);
        break;
      case Op::REQUIRE:
        slotIndex(at, a[0]);
        if (!ctx_.isEntity || a[0] >= ctx_.paramCount)
          diag(at, "AMG-B013",
               ctx_.isEntity
                   ? "REQUIRE slot " + std::to_string(a[0]) +
                         " is not a parameter (entity takes " +
                         std::to_string(ctx_.paramCount) + ")"
                   : "REQUIRE outside an entity body");
        break;
      case Op::CALL: callSite(at, a[0]); break;
      case Op::VARIANT: variantSite(at, a[0]); break;
      case Op::RAISE:
        if (a[0] >= c_.diags.size())
          diag(at, "AMG-B009",
               "diagnostic index " + std::to_string(a[0]) +
                   " out of bounds (table size " +
                   std::to_string(c_.diags.size()) + ")");
        break;
      default: break;  // no operands, nothing structural to check
    }
  }

  void callSite(std::uint32_t at, std::uint32_t idx) {
    if (idx >= c_.calls.size()) {
      diag(at, "AMG-B007",
           "call-site index " + std::to_string(idx) +
               " out of bounds (table size " + std::to_string(c_.calls.size()) +
               ")");
      return;
    }
    const lang::CallSite& cs = c_.calls[idx];
    if (cs.argNames.size() != cs.argc)
      diag(at, "AMG-B007",
           "call site " + std::to_string(idx) + " ('" + cs.name + "') has " +
               std::to_string(cs.argNames.size()) + " argument names for argc " +
               std::to_string(cs.argc));
    if (cs.builtin >= 0 &&
        static_cast<std::size_t>(cs.builtin) >= lang::builtinSignatures().size())
      diag(at, "AMG-B007",
           "call site " + std::to_string(idx) + " ('" + cs.name +
               "') names builtin ordinal " + std::to_string(cs.builtin) +
               " past the signature table (" +
               std::to_string(lang::builtinSignatures().size()) + ")");
  }

  void variantSite(std::uint32_t at, std::uint32_t idx) {
    if (idx >= c_.variants.size()) {
      diag(at, "AMG-B008",
           "variant index " + std::to_string(idx) + " out of bounds (table size " +
               std::to_string(c_.variants.size()) + ")");
      return;
    }
    const VariantSite& vs = c_.variants[idx];
    const auto bad = [&](std::string why) {
      diag(at, "AMG-B011",
           "malformed VARIANT site " + std::to_string(idx) + ": " +
               std::move(why));
    };
    if (vs.branches.empty()) return bad("no branches");
    if (!boundary(vs.end) || vs.end < at + 2)
      return bad("end " + std::to_string(vs.end) +
                 " is not a boundary after the instruction");
    std::uint32_t prev = at + 2;  // branches start right after the operand
    for (const auto& [start, end] : vs.branches) {
      if (start < prev || end < start || end > vs.end)
        return bad("branch [" + std::to_string(start) + "," +
                   std::to_string(end) + ") out of order or outside [" +
                   std::to_string(at + 2) + "," + std::to_string(vs.end) + ")");
      if (!boundary(start) || !boundary(end))
        return bad("branch [" + std::to_string(start) + "," +
                   std::to_string(end) + ") not on instruction boundaries");
      prev = end;
    }
  }

  // --- VARIANT nesting -----------------------------------------------------

  /// A nested VARIANT (instruction *and* its whole site range) must sit
  /// inside exactly one branch of the enclosing site; a site straddling a
  /// branch edge would re-run code the enclosing rollback also re-runs.
  void variantNesting() {
    for (const auto& [outerAt, outerIdx] : variantAt_) {
      if (outerIdx >= c_.variants.size()) continue;  // already diagnosed
      const VariantSite& outer = c_.variants[outerIdx];
      for (const auto& [innerAt, innerIdx] : variantAt_) {
        if (innerAt <= outerAt || innerAt >= outer.end) continue;
        if (innerIdx >= c_.variants.size()) continue;
        const VariantSite& inner = c_.variants[innerIdx];
        const bool contained = std::any_of(
            outer.branches.begin(), outer.branches.end(),
            [&](const std::pair<std::uint32_t, std::uint32_t>& br) {
              return innerAt >= br.first && innerAt < br.second &&
                     inner.end <= br.second;
            });
        if (!contained)
          diag(innerAt, "AMG-B011",
               "VARIANT site " + std::to_string(innerIdx) +
                   " is not balanced inside one branch of enclosing site " +
                   std::to_string(outerIdx));
      }
    }
  }

  const Chunk& c_;
  const ChunkContext& ctx_;
  ChunkVerification& out_;
  detail::Boundaries b_;
  std::vector<std::uint32_t> starts_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> variantAt_;  ///< (offset, site idx)
};

}  // namespace

ChunkVerification verifyChunk(const Chunk& c, const ChunkContext& ctx) {
  ChunkVerification out;
  detail::Boundaries b;
  const bool sound = StructuralPass(c, ctx, out).run(&b);
  // The dataflow pass indexes by the decoded boundaries, so it only runs
  // on a structurally sound stream.
  if (sound) detail::analyzeFlow(c, ctx, b, out);
  return out;
}

ProgramVerification verifyProgram(const lang::CompiledProgram& p) {
  ProgramVerification out;
  const auto one = [&](const Chunk& c, const ChunkContext& ctx) {
    ChunkVerification v = verifyChunk(c, ctx);
    out.depths.emplace(&c, std::move(v.depthIn));
    for (util::Diag& d : v.diags) out.diags.push_back(std::move(d));
  };
  one(p.top, {false, 0, "top-level"});
  for (const auto& e : p.entities)
    one(e->chunk, {true, e->params.size(), "ENT " + e->name});
  return out;
}

}  // namespace amg::analysis
