// Static semantic analysis (linting) of layout-description-language
// programs.
//
// The paper's environment discovers an ill-formed module — an undefined
// entity, a wrong-arity call, a layer the deck does not know, a VARIANT
// branch that can never fire — only while interpreting it, potentially
// after minutes of backtracking and compaction.  The analyzer runs four
// passes over the parsed AST *before* any geometry is built:
//
//   1. symbol resolution   undefined/duplicate entities, undefined
//                          variables, unused parameters/locals,
//                          caller-scope reliance, call-graph cycles
//   2. call checking       arity and named-parameter validity against
//                          EntityDecl and the builtin signature table
//                          (lang/builtins.h), constant-argument types
//   3. tech compatibility  layer-name constants (including those flowing
//                          through entity parameters) validated against a
//                          tech::Technology deck
//   4. flow analysis       constant folding + interval analysis: dead
//                          conditionals, non-positive trip counts,
//                          unreachable / can-never-succeed VARIANT
//                          branches, constant division by zero
//
// Findings are util::Diags with stable AMG-L* codes (registry in
// docs/LINT.md) and a severity; errors are defects that would fail at
// runtime if reached, warnings are almost-certainly-unintended code.
// Consumers: the amg_lint CLI, dsl_runner --lint, and the batch engine's
// pre-flight gate (gen::BatchEngine rejects error-jobs before scheduling).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.h"
#include "util/diag.h"

namespace amg::tech {
class Technology;
}

namespace amg::analysis {

enum class Severity : std::uint8_t { Error, Warning, Note };

/// "error" / "warning" / "note" — feeds util::renderDiag's label.
const char* severityName(Severity s);

struct Finding {
  Severity severity = Severity::Error;
  util::Diag diag;
};

struct Options {
  /// Deck to validate layer names against; nullptr skips the tech pass.
  const tech::Technology* tech = nullptr;
  /// Emit the unused-parameter / unused-local warnings (AMG-L005/L006).
  bool warnUnused = true;
};

/// An entity's callable surface, harvested during analysis — lets callers
/// (the batch engine's pre-flight) validate a request against the script
/// without re-parsing it.
struct EntitySig {
  struct Param {
    std::string name;
    bool optional = false;    ///< <name>
    bool hasDefault = false;  ///< name = expr
  };
  std::string name;
  std::vector<Param> params;
  int line = 0;
};

struct Report {
  /// All findings, sorted by (file, line, col, code).
  std::vector<Finding> findings;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;

  /// Entities declared across all analyzed sources (last declaration of a
  /// name wins, matching interpreter shadowing).
  std::vector<EntitySig> entities;
  /// Names assigned anywhere at top level (the calling sequence's
  /// exports), sorted.
  std::vector<std::string> globals;

  bool clean(bool werror = false) const {
    return errors == 0 && (!werror || warnings == 0);
  }
  /// First finding that fails the run under the given -Werror policy;
  /// nullptr when clean.
  const Finding* firstError(bool werror = false) const;
  const EntitySig* findEntity(const std::string& name) const;
};

/// Multi-source analyzer: add each source (entities accumulate across
/// sources, like Interpreter::loadEntities), then run().  A source that
/// fails to lex/parse contributes its AMG-LEX/AMG-PARSE diagnostic as an
/// error finding and is otherwise skipped.
class Analyzer {
 public:
  explicit Analyzer(Options opt = {});
  ~Analyzer();
  Analyzer(Analyzer&&) noexcept;
  Analyzer& operator=(Analyzer&&) noexcept;

  void addSource(const std::string& source, const std::string& file);
  Report run();

 private:
  struct Unit {
    lang::Program prog;
    std::string file;
  };
  Options opt_;
  std::vector<Unit> units_;
  std::vector<Finding> pre_;  ///< lex/parse-stage findings
};

/// One-shot convenience: analyze a single source.
Report analyzeSource(const std::string& source, const std::string& file,
                     const Options& opt = {});

}  // namespace amg::analysis
