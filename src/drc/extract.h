// Device extraction and layout-vs-schematic comparison (LVS).
//
// An extension beyond the paper's scope, but squarely in its spirit: the
// module generators promise electrically correct modules, and this checker
// proves it from the geometry alone.  A MOS device is recognized wherever
// a poly shape fully crosses a diffusion shape; its source/drain nets are
// the electrical components of the diffusion fragments on either side of
// the channel (the same gate-aware splitting the connectivity extractor
// uses).
#pragma once

#include <string>
#include <vector>

#include "db/module.h"

namespace amg::drc {

/// One extracted MOS transistor.
struct ExtractedMos {
  std::string gateNet;   ///< "" when the gate is on an anonymous net
  std::string sourceNet; ///< terminal nets, source/drain interchangeable;
  std::string drainNet;  ///< canonicalized so sourceNet <= drainNet
  std::string diffLayer; ///< "pdiff" / "ndiff"
  Coord w = 0;           ///< channel width (nm)
  Coord l = 0;           ///< channel length (nm)
};

/// Extract every MOS device of the module.  Devices whose terminals have
/// no named net report "" for that terminal.
std::vector<ExtractedMos> extractMos(const db::Module& m);

/// A reference (schematic) device for the comparison; source/drain order
/// does not matter.
struct NetlistMos {
  std::string gate, source, drain;
};

struct LvsResult {
  bool matched = false;
  int layoutDevices = 0;
  int netlistDevices = 0;
  std::vector<std::string> messages;  ///< per-discrepancy diagnostics
};

/// Compare the extracted devices against a reference netlist: every
/// schematic device must appear in the layout with the same gate and
/// terminal nets (multiset match, S/D symmetric), and vice versa.
/// Dummy devices may be excluded by listing their gate nets in
/// `ignoreGateNets`.
LvsResult lvs(const db::Module& m, const std::vector<NetlistMos>& netlist,
              const std::vector<std::string>& ignoreGateNets = {});

}  // namespace amg::drc
