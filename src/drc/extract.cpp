#include "drc/extract.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "db/connectivity.h"

namespace amg::drc {
namespace {

using db::Module;
using db::Shape;
using db::ShapeId;
using tech::LayerKind;
using tech::Technology;

}  // namespace

std::vector<ExtractedMos> extractMos(const db::Module& m) {
  const Technology& t = m.technology();
  const db::Connectivity conn(m);
  std::vector<ExtractedMos> out;

  for (ShapeId gi : m.shapeIds()) {
    const Shape& gate = m.shape(gi);
    if (t.info(gate.layer).kind != LayerKind::Poly) continue;
    for (ShapeId di : m.shapeIds()) {
      const Shape& diff = m.shape(di);
      if (t.info(diff.layer).kind != LayerKind::Diffusion) continue;
      if (diff.layer == t.substrateTieLayer()) continue;
      const Box ch = gate.box.intersect(diff.box);
      if (ch.empty()) continue;

      ExtractedMos dev;
      dev.diffLayer = t.info(diff.layer).name;
      dev.gateNet = gate.net == db::kNoNet ? "" : m.netName(gate.net);

      Point pa, pb;
      if (gate.box.y1 <= diff.box.y1 && gate.box.y2 >= diff.box.y2) {
        // Vertical gate: terminals west/east of the channel.
        dev.l = ch.width();
        dev.w = ch.height();
        pa = Point{ch.x1 - 1, ch.center().y};
        pb = Point{ch.x2 + 1, ch.center().y};
      } else if (gate.box.x1 <= diff.box.x1 && gate.box.x2 >= diff.box.x2) {
        // Horizontal gate: terminals south/north.
        dev.l = ch.height();
        dev.w = ch.width();
        pa = Point{ch.center().x, ch.y1 - 1};
        pb = Point{ch.center().x, ch.y2 + 1};
      } else {
        continue;  // partial overlap: no channel is formed
      }

      dev.sourceNet = conn.netNameOf(conn.componentAt(di, pa));
      dev.drainNet = conn.netNameOf(conn.componentAt(di, pb));
      if (dev.sourceNet > dev.drainNet) std::swap(dev.sourceNet, dev.drainNet);
      out.push_back(std::move(dev));
    }
  }
  return out;
}

LvsResult lvs(const db::Module& m, const std::vector<NetlistMos>& netlist,
              const std::vector<std::string>& ignoreGateNets) {
  LvsResult res;
  auto ignored = [&](const std::string& g) {
    return std::find(ignoreGateNets.begin(), ignoreGateNets.end(), g) !=
           ignoreGateNets.end();
  };

  // Canonical key: gate | min(terminals) | max(terminals).
  auto key = [](const std::string& g, std::string s, std::string d) {
    if (s > d) std::swap(s, d);
    return g + "|" + s + "|" + d;
  };

  std::multiset<std::string> layout;
  for (const ExtractedMos& dev : extractMos(m)) {
    if (ignored(dev.gateNet)) continue;
    layout.insert(key(dev.gateNet, dev.sourceNet, dev.drainNet));
  }
  std::multiset<std::string> wanted;
  for (const NetlistMos& dev : netlist) wanted.insert(key(dev.gate, dev.source, dev.drain));

  res.layoutDevices = static_cast<int>(layout.size());
  res.netlistDevices = static_cast<int>(wanted.size());

  for (const std::string& k : wanted) {
    const auto it = layout.find(k);
    if (it != layout.end()) {
      layout.erase(it);
    } else {
      res.messages.push_back("missing in layout: MOS(" + k + ")");
    }
  }
  for (const std::string& k : layout)
    res.messages.push_back("extra in layout: MOS(" + k + ")");

  res.matched = res.messages.empty();
  return res;
}

}  // namespace amg::drc
