#include "drc/drc.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "db/connectivity.h"
#include "geom/spatial.h"
#include "geom/subtract.h"
#include "obs/obs.h"
#include "tech/rulecache.h"

namespace amg::drc {

bool defaultBruteForce() { return !obs::spatialEngines().drcIndexed; }

namespace {

using db::Module;
using db::Shape;
using db::ShapeId;
using tech::LayerKind;
using tech::Technology;

/// Layer-bucketed index over all alive shapes, ids ascending.
geom::SpatialIndex buildShapeIndex(const Module& m) {
  geom::SpatialIndex idx;
  for (ShapeId id : m.shapeIds()) idx.insert(id, m.shape(id).layer, m.shape(id).box);
  return idx;
}

std::string shapeDesc(const Module& m, ShapeId id) {
  const Shape& s = m.shape(id);
  std::ostringstream os;
  os << m.technology().info(s.layer).name << ' ' << s.box;
  if (s.net != db::kNoNet) os << " net=" << m.netName(s.net);
  return os.str();
}

void checkWidths(const Module& m, std::vector<Violation>& out) {
  const Technology& t = m.technology();
  for (ShapeId id : m.shapeIds()) {
    const Shape& s = m.shape(id);
    const auto& info = t.info(s.layer);
    if (info.kind == LayerKind::Marker) continue;
    if (info.kind == LayerKind::Cut) {
      const auto [cw, ch] = t.cutSize(s.layer);
      if (s.box.width() != cw || s.box.height() != ch)
        out.push_back(Violation{ViolationKind::CutSize, id, db::kNoShape, s.box,
                                "cut is not the exact technology size: " +
                                    shapeDesc(m, id)});
      continue;
    }
    if (auto w = t.findMinWidth(s.layer)) {
      if (s.box.width() < *w || s.box.height() < *w)
        out.push_back(Violation{ViolationKind::MinWidth, id, db::kNoShape, s.box,
                                "below minimum width " + std::to_string(*w) + ": " +
                                    shapeDesc(m, id)});
    }
  }
}

void checkSpacings(const Module& m, bool samePotentialExempt, bool bruteForce,
                   std::vector<Violation>& out) {
  const tech::RuleCache& rc = m.technology().rules();
  const auto ids = m.shapeIds();
  // Built lazily: a clean, sparse layout may never need the exemption.
  std::optional<db::Connectivity> conn;
  auto connected = [&](ShapeId a, ShapeId b) {
    if (!conn) conn.emplace(m);
    return conn->connected(a, b);
  };
  auto report = [&](ShapeId ia, ShapeId ib) {
    const Shape& a = m.shape(ia);
    const Shape& b = m.shape(ib);
    const auto rule = rc.minSpacing(a.layer, b.layer);
    if (!rule) return;
    if (gapX(a.box, b.box) >= *rule || gapY(a.box, b.box) >= *rule) return;
    if (a.layer == b.layer && samePotentialExempt && connected(ia, ib)) return;
    out.push_back(Violation{
        ViolationKind::Spacing, ia, ib, a.box.unite(b.box),
        "spacing < " + std::to_string(*rule) + " between " + shapeDesc(m, ia) +
            " and " + shapeDesc(m, ib)});
  };

  const auto universe =
      static_cast<std::uint64_t>(ids.size()) * (ids.empty() ? 0 : ids.size() - 1) / 2;
  OBS_COUNT_N("drc.spacing.universe", universe);
  if (bruteForce) {
    for (std::size_t i = 0; i < ids.size(); ++i)
      for (std::size_t j = i + 1; j < ids.size(); ++j) report(ids[i], ids[j]);
    OBS_COUNT_N("drc.spacing.candidates", universe);  // brute examines all
    return;
  }
  // Candidates within the per-layer max-rule halo; ids ascending keeps the
  // violation order identical to the all-pairs scan.
  const geom::SpatialIndex idx = buildShapeIndex(m);
  std::vector<std::uint32_t> cand;
  std::uint64_t candTotal = 0;
  for (const ShapeId ia : ids) {
    const Shape& a = m.shape(ia);
    idx.query(a.box.expanded(rc.maxSpacing(a.layer)), cand);
    for (const std::uint32_t ib : cand) {
      if (ib > ia) {
        ++candTotal;
        report(ia, ib);
      }
    }
  }
  OBS_COUNT_N("drc.spacing.candidates", candTotal);
  if (universe > candTotal) OBS_COUNT_N("drc.spacing.pruned", universe - candTotal);
}

void checkEnclosures(const Module& m, bool bruteForce, std::vector<Violation>& out) {
  const Technology& t = m.technology();
  std::optional<geom::SpatialIndex> idx;
  if (!bruteForce) idx.emplace(buildShapeIndex(m));
  std::vector<std::uint32_t> cand;
  for (ShapeId id : m.shapeIds()) {
    const Shape& cut = m.shape(id);
    if (t.info(cut.layer).kind != LayerKind::Cut) continue;
    const auto conns = t.cutConnections(cut.layer);
    bool ok = false;
    for (const auto& [la, lb] : conns) {
      auto coveredBy = [&](tech::LayerId l) {
        const Coord margin = t.enclosure(l, cut.layer).value_or(0);
        std::vector<Box> covers;
        if (idx) {
          // Only covers reaching the margin region can subtract area.
          idx->query(l, cut.box.expanded(margin), cand);
          for (const std::uint32_t sid : cand) covers.push_back(m.shape(sid).box);
        } else {
          for (ShapeId sid : m.shapesOn(l)) covers.push_back(m.shape(sid).box);
        }
        return geom::isCovered(cut.box.expanded(margin), covers);
      };
      if (coveredBy(la) && coveredBy(lb)) {
        ok = true;
        break;
      }
    }
    if (!ok && !conns.empty())
      out.push_back(Violation{ViolationKind::Enclosure, id, db::kNoShape, cut.box,
                              "cut not enclosed by any connectable layer pair: " +
                                  shapeDesc(m, id)});
  }
}

}  // namespace

const char* violationName(ViolationKind k) {
  switch (k) {
    case ViolationKind::MinWidth: return "min-width";
    case ViolationKind::CutSize: return "cut-size";
    case ViolationKind::Spacing: return "spacing";
    case ViolationKind::Enclosure: return "enclosure";
    case ViolationKind::LatchUp: return "latch-up";
  }
  return "?";
}

std::vector<Box> unenclosedPdiff(const db::Module& m) {
  const Technology& t = m.technology();
  const auto pdiff = t.findLayer("pdiff");
  const auto nwell = t.findLayer("nwell");
  std::vector<Box> out;
  if (!pdiff || !nwell) return out;
  const Coord margin = t.enclosure(*nwell, *pdiff).value_or(0);
  std::vector<Box> wells;
  for (ShapeId id : m.shapesOn(*nwell))
    wells.push_back(m.shape(id).box.expanded(-margin));
  for (ShapeId id : m.shapesOn(*pdiff)) {
    auto rest = geom::subtractAll({m.shape(id).box}, wells);
    out.insert(out.end(), rest.begin(), rest.end());
  }
  return out;
}

std::vector<Box> latchUpGuards(const db::Module& m) {
  const Technology& t = m.technology();
  std::vector<Box> guards;
  if (t.substrateTieLayer() == tech::kNoLayer || t.latchUpRadius() <= 0) return guards;
  for (ShapeId id : m.shapesOn(t.substrateTieLayer()))
    guards.push_back(m.shape(id).box.expanded(t.latchUpRadius()));
  return guards;
}

std::vector<Box> uncoveredActive(const db::Module& m) {
  const Technology& t = m.technology();
  const auto guards = latchUpGuards(m);
  std::vector<Box> uncovered;
  for (tech::LayerId l : t.activeLayers()) {
    if (l == t.substrateTieLayer()) continue;
    for (ShapeId id : m.shapesOn(l)) {
      // "If these rectangles do not enclose completely the other rectangles
      // only the overlapping part is cut while the remaining part of the
      // rectangle is still stored" — exactly subtractAll.
      auto rest = geom::subtractAll({m.shape(id).box}, guards);
      uncovered.insert(uncovered.end(), rest.begin(), rest.end());
    }
  }
  return uncovered;
}

std::vector<Violation> check(const db::Module& m, const CheckOptions& options) {
  OBS_COUNT("drc.checks");
  if (options.bruteForce)
    OBS_COUNT("drc.engine.brute");
  else
    OBS_COUNT("drc.engine.indexed");
  obs::Span span("drc.check");
  span.arg("module", m.name())
      .arg("shapes", static_cast<std::uint64_t>(m.shapeCount()))
      .arg("engine", options.bruteForce ? "brute" : "indexed");
  std::vector<Violation> out;
  if (options.widths) checkWidths(m, out);
  if (options.spacings)
    checkSpacings(m, options.samePotentialExempt, options.bruteForce, out);
  if (options.enclosures) checkEnclosures(m, options.bruteForce, out);
  if (options.latchUp) {
    for (const Box& piece : uncoveredActive(m))
      out.push_back(Violation{ViolationKind::LatchUp, db::kNoShape, db::kNoShape, piece,
                              "active area " + piece.str() +
                                  " not covered by a substrate contact guard"});
  }
  if (options.wellEnclosure) {
    for (const Box& piece : unenclosedPdiff(m))
      out.push_back(Violation{ViolationKind::Enclosure, db::kNoShape, db::kNoShape,
                              piece,
                              "pdiff " + piece.str() + " not enclosed by an n-well"});
  }
  // Violation counts by rule — the names are dynamic (one counter per
  // kind), so this goes through the registry directly, not OBS_COUNT.
  if (obs::statsEnabled() && !out.empty()) {
    for (const Violation& v : out)
      obs::Stats::global()
          .counter(std::string("drc.violations.") + violationName(v.kind))
          .add();
  }
  span.arg("violations", static_cast<std::uint64_t>(out.size()));
  OBS_LOG(Debug, "drc.check",
          "module '" + m.name() + "': " + std::to_string(out.size()) +
              " violation(s)");
  return out;
}

void expectClean(const db::Module& m, const CheckOptions& options) {
  const auto v = check(m, options);
  if (v.empty()) return;
  std::ostringstream os;
  os << "module '" << m.name() << "': " << v.size() << " DRC violation(s):";
  for (std::size_t i = 0; i < v.size() && i < 8; ++i)
    os << "\n  [" << violationName(v[i].kind) << "] " << v[i].message;
  if (v.size() > 8) os << "\n  ...";
  throw DesignRuleError(os.str());
}

namespace {

/// True when `cand` can be added to `m` without breaking spacing rules or
/// overlapping existing mask geometry.  Candidates come from a halo query
/// on `idx` (which must cover every alive shape of `m`); shapes beyond the
/// max-rule halo can neither violate a rule nor overlap.
bool placementLegal(const Module& m, const Shape& cand, const geom::SpatialIndex& idx,
                    std::vector<std::uint32_t>& scratch) {
  const tech::RuleCache& rc = m.technology().rules();
  idx.query(cand.box.expanded(rc.maxSpacing(cand.layer)), scratch);
  for (const std::uint32_t id : scratch) {
    const Shape& s = m.shape(id);
    if (rc.kind(s.layer) == LayerKind::Marker) continue;
    if (auto rule = rc.minSpacing(cand.layer, s.layer)) {
      if (gapX(cand.box, s.box) < *rule && gapY(cand.box, s.box) < *rule) return false;
    } else if (cand.box.overlaps(s.box)) {
      return false;  // no rule, but a stray overlap would change devices
    }
  }
  return true;
}

}  // namespace

int insertSubstrateContacts(db::Module& m, const std::string& netName) {
  obs::Span span("drc.substrate_contacts");
  span.arg("module", m.name());
  const Technology& t = m.technology();
  const tech::LayerId tie = t.substrateTieLayer();
  if (tie == tech::kNoLayer)
    throw DesignRuleError("technology has no substrate tie layer");
  const tech::LayerId contact = t.layer("contact");
  const tech::LayerId metal1 = t.layer("metal1");
  const auto [cw, ch] = t.cutSize(contact);
  const Coord tieEnc = t.enclosure(tie, contact).value_or(0);
  const Coord metEnc = t.enclosure(metal1, contact).value_or(0);
  const Coord tieSize = std::max(t.minWidth(tie), std::max(cw, ch) + 2 * tieEnc);
  const db::NetId net = m.net(netName);

  // One index per insertion run, grown incrementally as contacts land —
  // the ring search probes hundreds of positions against the whole module.
  geom::SpatialIndex idx = buildShapeIndex(m);
  std::vector<std::uint32_t> scratch;

  int inserted = 0;
  for (int round = 0; round < 64; ++round) {
    const auto uncovered = uncoveredActive(m);
    if (uncovered.empty()) {
      OBS_COUNT_N("drc.substrate.inserted", inserted);
      span.arg("inserted", inserted);
      return inserted;
    }

    const Box piece = uncovered.front();
    // Search positions on expanding rings around the uncovered piece; any
    // position within latchUpRadius of the piece covers it.
    const Coord step = tieSize + 3000;
    bool placed = false;
    for (int ring = 1; ring <= 40 && !placed; ++ring) {
      for (int ix = -ring; ix <= ring && !placed; ++ix) {
        for (int iy = -ring; iy <= ring && !placed; ++iy) {
          if (std::max(std::abs(ix), std::abs(iy)) != ring) continue;
          const Point c{piece.center().x + ix * step, piece.center().y + iy * step};
          OBS_COUNT("drc.substrate.probes");
          const Shape tieShape =
              db::makeShape(Box::centredOn(c, tieSize, tieSize), tie, net);
          // The guard from this position must still cover the piece.
          if (!tieShape.box.expanded(t.latchUpRadius()).contains(piece)) continue;
          const Shape metShape = db::makeShape(
              tieShape.box.expanded(-(tieEnc - metEnc)), metal1, net);
          const Shape cutShape = db::makeShape(Box::centredOn(c, cw, ch), contact, net);
          if (!placementLegal(m, tieShape, idx, scratch) ||
              !placementLegal(m, metShape, idx, scratch) ||
              !placementLegal(m, cutShape, idx, scratch))
            continue;

          idx.insert(m.addShape(tieShape), tieShape.layer, tieShape.box);
          idx.insert(m.addShape(metShape), metShape.layer, metShape.box);
          idx.insert(m.addShape(cutShape), cutShape.layer, cutShape.box);
          ++inserted;
          placed = true;
        }
      }
    }
    if (!placed)
      throw DesignRuleError(
          "insertSubstrateContacts: no legal position found near " + piece.str());
  }
  OBS_COUNT_N("drc.substrate.inserted", inserted);
  span.arg("inserted", inserted);
  return inserted;
}

}  // namespace amg::drc
