// Independent design-rule checker.
//
// The generator environment "evaluates and fulfills the design rules
// automatically" (§2.1); this checker verifies the result from the geometry
// alone — it never trusts the provenance records — and is used by the tests
// as the correctness oracle for every module generator.
//
// It includes the paper's flagship example, the latch-up rule (Fig. 1):
// "temporary rectangles which are placed around the substrate contacts
// [must] enclose all locos areas of MOS-transistors ... If not all active
// areas are enclosed additional substrate contacts have to be inserted."
#pragma once

#include <string>
#include <vector>

#include "db/module.h"

namespace amg::drc {

enum class ViolationKind : std::uint8_t {
  MinWidth,   ///< shape narrower than the layer minimum
  CutSize,    ///< cut rectangle not of the exact technology size
  Spacing,    ///< two shapes closer than their rule allows
  Enclosure,  ///< cut not enclosed by the layers it connects
  LatchUp,    ///< active area not covered by substrate-contact guards
};

const char* violationName(ViolationKind k);

/// The pair-enumeration default a fresh CheckOptions selects: follows the
/// central obs::spatialEngines() config block (indexed unless steered).
bool defaultBruteForce();

struct Violation {
  ViolationKind kind;
  db::ShapeId a = db::kNoShape;  ///< offending shape
  db::ShapeId b = db::kNoShape;  ///< second shape for pair rules
  Box where;                     ///< offending region
  std::string message;           ///< human-readable diagnosis
};

struct CheckOptions {
  bool widths = true;
  bool spacings = true;
  bool enclosures = true;
  bool latchUp = true;
  /// Enumerate candidate pairs by all-pairs scan instead of the spatial
  /// index.  Both engines report identical violations in identical order
  /// (enforced by tests); the brute path is the oracle and the benchmark
  /// baseline.
  bool bruteForce = defaultBruteForce();
  /// Exempt same-layer spacing between geometrically connected shapes —
  /// the compactor's same-potential merge produces intentional abutments.
  bool samePotentialExempt = true;
  /// Require every pdiff shape to lie inside an n-well with the rule
  /// margin (off by default: generic NMOS-style modules have no well;
  /// turn on after modules::nwellWithTap()).
  bool wellEnclosure = false;
};

/// Run all enabled checks; empty result = clean layout.
std::vector<Violation> check(const db::Module& m, const CheckOptions& options = {});

/// Convenience: throws DesignRuleError with a summary when check() finds
/// anything (tests use EXPECT_NO_THROW / the error message).
void expectClean(const db::Module& m, const CheckOptions& options = {});

/// The pdiff areas not properly enclosed by n-wells (empty when the
/// wellEnclosure check passes).
std::vector<Box> unenclosedPdiff(const db::Module& m);

/// The temporary guard rectangles of the latch-up rule: one box of
/// side-distance latchUpRadius() around every substrate-tie shape.
std::vector<Box> latchUpGuards(const db::Module& m);

/// The parts of MOS active (LOCOS) areas not covered by the guards, via the
/// 16-case rectangle subtraction of Fig. 1.  Empty = rule fulfilled.
std::vector<Box> uncoveredActive(const db::Module& m);

/// Insert additional substrate contacts (tie diffusion + contact + metal1
/// on net `netName`) until the latch-up rule is fulfilled.  Returns the
/// number of contacts inserted.  Throws DesignRuleError when no legal
/// position can be found for a needed contact.
int insertSubstrateContacts(db::Module& m, const std::string& netName = "gnd");

}  // namespace amg::drc
