// Structured diagnostics: every error the environment reports carries a
// source location (file:line:col), a stable error code, and a remediation
// hint.
//
// The paper's promise — "if a rule cannot be fulfilled an error message
// occurs" — is not enough for a batch service: when one job out of a
// 500-job sweep fails, the report must say *which* input, *where* in it,
// and *what to do about it*, without a debugger.  Every user-facing error
// path (lexer, parser, interpreter, technology-file parser, primitives,
// batch manifest) now throws an exception carrying a Diag; the batch
// engine (gen/engine.h) captures Diags per job instead of aborting, and
// dsl_runner renders them caret-style against the offending source line.
//
// Error-code registry (stable identifiers, referenced from docs/CLI.md):
//   AMG-LEX-*    tokenizer           AMG-PARSE-*  parser
//   AMG-INTERP-* interpreter         AMG-TECH-*   technology file
//   AMG-PRIM-*   primitive shapes    AMG-MAN-*    batch manifest
//   AMG-IO-*     layout serializer   AMG-GEN-*    batch engine
//   AMG-OBS-*    request traces (obs/recorder.h)
#pragma once

#include <string>
#include <string_view>

#include "geom/coord.h"

namespace amg::util {

/// Where in which input an error happened.  line/col are 1-based; 0 means
/// "unknown" (e.g. a primitive called from C++ has no source position).
struct SourceLoc {
  std::string file;  ///< script/tech/manifest path, or "<string>"
  int line = 0;
  int col = 0;

  bool known() const { return line > 0; }
  /// "file:line:col" (parts with value 0 are omitted).
  std::string str() const;
};

/// One structured diagnostic.
struct Diag {
  std::string code;     ///< stable identifier, e.g. "AMG-LEX-002"
  std::string message;  ///< what went wrong, one sentence
  SourceLoc loc;        ///< where (may be unknown)
  std::string hint;     ///< how to fix it (may be empty)

  /// One-line rendering: "file:line:col: error [CODE]: message".  The
  /// location prefix is dropped when unknown, the code when empty.
  std::string str() const { return str("error"); }
  /// Same, with an explicit severity label ("error", "warning", "note") —
  /// the analyzer (src/analysis) reports non-fatal findings through the
  /// same rendering.
  std::string str(std::string_view severity) const;
};

/// Exception carrying a Diag.  what() returns Diag::str(), so existing
/// catch (const Error&) sites keep printing sensible messages.
class DiagError : public Error {
 public:
  explicit DiagError(Diag d) : Error(d.str()), diag_(std::move(d)) {}
  const Diag& diag() const { return diag_; }

 private:
  Diag diag_;
};

/// A design-rule violation with structured payload: still a
/// DesignRuleError, so the interpreter's VARIANT backtracking (which
/// catches DesignRuleError) keeps working, but batch reports can recover
/// the code/hint.
class DesignRuleDiag : public DesignRuleError {
 public:
  explicit DesignRuleDiag(Diag d) : DesignRuleError(d.str()), diag_(std::move(d)) {}
  const Diag& diag() const { return diag_; }

 private:
  Diag diag_;
};

/// Render `d` caret-style against the source text it points into:
///
///   script.amg:3:22: error [AMG-INTERP-001]: unknown variable 'Wx'
///       3 | r = ContactRow(W = Wx)
///         |                    ^
///   hint: assign it first or declare it as an entity parameter
///
/// Falls back to the one-line form when the location is unknown or out of
/// range for `source`.
std::string renderDiag(const Diag& d, std::string_view source);

/// Same, with an explicit severity label instead of "error".
std::string renderDiag(const Diag& d, std::string_view source,
                       std::string_view severity);

}  // namespace amg::util
