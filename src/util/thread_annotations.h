// Clang thread-safety analysis annotations (-Wthread-safety), plus an
// annotated mutex the analysis can actually see.
//
// libstdc++'s std::mutex carries no capability attribute, so GUARDED_BY on
// members locked via std::lock_guard<std::mutex> is invisible to the
// analysis.  util::Mutex wraps std::mutex with the capability attributes
// and util::MutexLock is the annotated scoped lock; shared mutable state
// (the chunk cache, the layout/prefix cache LRUs, the capi engine handle)
// declares its guards with AMG_GUARDED_BY and private helpers with
// AMG_REQUIRES.  Under GCC (or any compiler without the attributes) every
// macro expands to nothing and Mutex degrades to a plain std::mutex
// wrapper — zero cost, zero warnings.
//
// The clang CI job builds with -Wthread-safety -Werror=thread-safety, so a
// new access to a guarded member without its lock is a build break, not a
// review nit.
#pragma once

#include <mutex>

#if defined(__clang__)
#define AMG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AMG_THREAD_ANNOTATION(x)
#endif

#define AMG_CAPABILITY(x) AMG_THREAD_ANNOTATION(capability(x))
#define AMG_SCOPED_CAPABILITY AMG_THREAD_ANNOTATION(scoped_lockable)
#define AMG_GUARDED_BY(x) AMG_THREAD_ANNOTATION(guarded_by(x))
#define AMG_PT_GUARDED_BY(x) AMG_THREAD_ANNOTATION(pt_guarded_by(x))
#define AMG_REQUIRES(...) \
  AMG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AMG_ACQUIRE(...) AMG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AMG_RELEASE(...) AMG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AMG_TRY_ACQUIRE(...) \
  AMG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define AMG_EXCLUDES(...) AMG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define AMG_RETURN_CAPABILITY(x) AMG_THREAD_ANNOTATION(lock_returned(x))
#define AMG_NO_THREAD_SAFETY_ANALYSIS \
  AMG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace amg::util {

/// std::mutex with the capability attribute the analysis needs.
class AMG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AMG_ACQUIRE() { mu_.lock(); }
  void unlock() AMG_RELEASE() { mu_.unlock(); }
  bool try_lock() AMG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard equivalent: the analysis treats the guarded
/// scope as holding the capability.
class AMG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AMG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AMG_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace amg::util
