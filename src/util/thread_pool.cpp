#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace amg::util {

std::size_t defaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? defaultThreadCount() : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lk(mu_);
    // Let outstanding jobs finish, then stop the workers.
    allDone_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
    stopping_ = true;
  }
  workReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(std::function<void()> job) {
  {
    std::scoped_lock lk(mu_);
    queue_.push_back(std::move(job));
  }
  workReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lk(mu_);
  allDone_.wait(lk, [this] { return queue_.empty() && running_ == 0; });
  if (firstError_) {
    std::exception_ptr e = firstError_;
    firstError_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      workReady_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    try {
      job();
    } catch (...) {
      std::scoped_lock lk(mu_);
      if (!firstError_) firstError_ = std::current_exception();
    }
    {
      std::scoped_lock lk(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) allDone_.notify_all();
    }
  }
}

void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t threads) {
  if (n == 0) return;
  const std::size_t t = threads == 0 ? defaultThreadCount() : threads;
  if (t <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  ThreadPool pool(std::min(t, n));
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.run([&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed))
        fn(i);
    });
  }
  pool.wait();
}

}  // namespace amg::util
