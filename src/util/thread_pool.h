// A small fixed-size thread pool with a shared work queue.
//
// Built for the §2.4 parallel optimizer (opt/parallel.*): the permutation
// search fans disjoint subtrees out as jobs, and idle workers pull the next
// unclaimed subtree from the shared queue — the work-stealing effect
// (fast-finishing workers absorb the remaining work) without per-worker
// deques, which the handful-of-coarse-jobs workload does not need.  Also
// used by the examples to parallelise per-object DRC sweeps.
//
// Semantics:
//  * run() enqueues a job; any idle worker executes it.
//  * wait() blocks until every enqueued job has finished (queue drained AND
//    no job still running), then returns.  The pool stays usable for more
//    rounds of run()/wait().
//  * Exceptions thrown by a job are captured; wait() rethrows the first one
//    (by enqueue round) after all jobs settled, so a failing search does
//    not leak detached work.
//  * The destructor drains outstanding jobs (equivalent to wait(), but
//    swallows exceptions) and joins the workers.
//
// The pool itself is not thread-safe for concurrent run()/wait() from
// *several* controller threads; one controller + N workers is the model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace amg::util {

/// Number of workers to use when the caller passes 0 ("pick for me"):
/// std::thread::hardware_concurrency(), at least 1.
std::size_t defaultThreadCount();

class ThreadPool {
 public:
  /// Start `threads` workers (0 = defaultThreadCount()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one job.
  void run(std::function<void()> job);

  /// Block until all enqueued jobs have completed; rethrows the first
  /// captured job exception, if any.
  void wait();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable workReady_;   // queue_ non-empty or stopping_
  std::condition_variable allDone_;     // queue_ empty and running_ == 0
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::exception_ptr firstError_;
};

/// Run fn(0..n-1) across a transient pool of `threads` workers (0 = pick;
/// a single worker or n <= 1 degenerates to an inline loop).  Iterations
/// are claimed dynamically, one index at a time, so uneven iteration costs
/// balance across workers.  Rethrows the first job exception.
void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 std::size_t threads = 0);

}  // namespace amg::util
