// Single source of truth for every version number the environment bakes
// into an artifact or a cache key.
//
// Before this header each binary format kept its own private constant
// (io/layout.cpp, obs/recorder.cpp, compact/prefix.cpp, lang/compiler.cpp,
// gen/engine.cpp) — five places that had to be grepped whenever a reader
// asked "which build wrote this blob?".  Embedders get the same answer at
// runtime through amg_version() / amg_versions() in the C ABI
// (include/amgen.h); the compatibility matrix lives in docs/EMBEDDING.md.
//
// Bump rules:
//  * A format constant changes exactly when the byte layout of that format
//    changes (readers reject other versions with the format's AMG-* code).
//  * kEngineVersion changes when generation *behavior* changes — same
//    inputs, different layout bytes — so every content-addressed cache key
//    derived from it (whole-layout and compactor-prefix tiers) is busted.
//  * kBytecodeVersion changes when compiled chunks stop being equivalent
//    (new opcode, changed operand encoding, changed lowering), busting the
//    process-wide chunk cache.
//  * kApiVersion changes when include/amgen.h changes incompatibly
//    (removed/retyped symbols); additions keep it stable.
#pragma once

#include <cstdint>

namespace amg::util {

/// Human-readable build identity, returned verbatim by amg_version().
inline constexpr const char* kVersionString = "amgen 0.9.0";

/// C-ABI compatibility generation (include/amgen.h, AMGEN_API_VERSION).
inline constexpr std::uint32_t kApiVersion = 1;

/// "AMGL" end-of-build layout record (io/layout.h, AMG-IO-002 on mismatch).
inline constexpr std::uint32_t kLayoutFormatVersion = 1;

/// "AMGS" mid-build session snapshot (io/layout.h, AMG-IO-002 on mismatch).
inline constexpr std::uint32_t kSessionFormatVersion = 1;

/// "AMGT" request trace (obs/recorder.h, AMG-OBS-002 on mismatch).
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Compactor-prefix snapshot chain (compact/prefix.h); feeds the rolling
/// chain-key seed, so a bump silently invalidates every prefix entry.
inline constexpr std::uint64_t kPrefixFormatVersion = 1;

/// Generation behavior generation (gen/engine.cpp cache keys).
inline constexpr std::uint64_t kEngineVersion = 1;

/// Compiled-chunk equivalence generation (lang/compiler.cpp chunk cache).
inline constexpr std::uint64_t kBytecodeVersion = 2;

}  // namespace amg::util
