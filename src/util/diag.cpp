#include "util/diag.h"

#include <sstream>

namespace amg::util {

std::string SourceLoc::str() const {
  if (file.empty() && line <= 0) return {};
  std::string out = file;
  if (line > 0) {
    out += ':';
    out += std::to_string(line);
    if (col > 0) {
      out += ':';
      out += std::to_string(col);
    }
  }
  return out;
}

std::string Diag::str(std::string_view severity) const {
  std::string out;
  const std::string where = loc.str();
  if (!where.empty()) out += where + ": ";
  out += severity;
  if (!code.empty()) out += " [" + code + "]";
  out += ": " + message;
  if (!hint.empty()) out += "\nhint: " + hint;
  return out;
}

std::string renderDiag(const Diag& d, std::string_view source) {
  return renderDiag(d, source, "error");
}

std::string renderDiag(const Diag& d, std::string_view source,
                       std::string_view severity) {
  if (!d.loc.known()) return d.str(severity);

  // Find the 1-based line the location points at.
  std::size_t begin = 0;
  int line = 1;
  while (line < d.loc.line) {
    const std::size_t nl = source.find('\n', begin);
    if (nl == std::string_view::npos) return d.str(severity);  // out of range
    begin = nl + 1;
    ++line;
  }
  std::size_t end = source.find('\n', begin);
  if (end == std::string_view::npos) end = source.size();
  const std::string_view text = source.substr(begin, end - begin);

  std::ostringstream os;
  const std::string where = d.loc.str();
  os << where << ": " << severity;
  if (!d.code.empty()) os << " [" << d.code << "]";
  os << ": " << d.message << "\n";

  char gutter[16];
  std::snprintf(gutter, sizeof gutter, "%5d | ", d.loc.line);
  os << gutter << text << "\n";
  if (d.loc.col > 0 && static_cast<std::size_t>(d.loc.col) <= text.size() + 1) {
    os << "      | ";
    // Mirror tabs so the caret lines up under tab-indented source.
    for (int i = 1; i < d.loc.col; ++i)
      os << (text[static_cast<std::size_t>(i - 1)] == '\t' ? '\t' : ' ');
    os << "^";
    os << "\n";
  }
  if (!d.hint.empty()) os << "hint: " << d.hint << "\n";
  return os.str();
}

}  // namespace amg::util
