// Shared FNV-1a hashing for the caching tiers.
//
// One definition of the chained 64-bit FNV-1a digest used by every
// content-addressed cache in the flow: the whole-layout cache and source
// canonicalizer (gen/fingerprint.h), the VM's chunk cache, and the
// compactor-prefix cache (compact/prefix.h).  It lives in util so layers
// below gen can hash without a dependency cycle (amg_gen links amg_lang
// links amg_compact; the prefix cache hashes from inside amg_compact).
//
// The chaining convention: feed the previous digest back in as `seed`.
// Byte-sequence hashes mix the length first, so field boundaries are
// unambiguous — ("ab","c") and ("a","bc") chain differently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace amg::util {

/// FNV-1a offset basis; pass as `seed` to start a fresh hash chain.
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Chain a raw integer into a hash (little-endian bytes).
constexpr std::uint64_t fnv1a(std::uint64_t value, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// 64-bit FNV-1a over `data`, chained (length-prefixed, see above).
constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvBasis) {
  std::uint64_t h = fnv1a(static_cast<std::uint64_t>(data.size()), seed);
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Fixed-width lowercase hex form of a key (disk-cache file stem).
inline std::string keyHex(std::uint64_t key) {
  const char* hex = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = hex[key & 0xF];
    key >>= 4;
  }
  return s;
}

}  // namespace amg::util
