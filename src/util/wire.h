// Little-endian wire primitives shared by every versioned binary format
// in the repo (AMGL layouts, AMGS session snapshots, AMGT request traces).
//
// Writer appends to a growable byte vector; Reader is bounds-checked and
// throws a util::DiagError with a caller-supplied diagnostic the moment a
// read would run past the end, so each format keeps its own stable
// truncation code (AMG-IO-003 for layouts, AMG-OBS-003 for traces).
//
// Both sides agree on the encoding: fixed-width integers little-endian,
// strings as u32 length + raw bytes, f64 as the IEEE-754 bit pattern in a
// u64.  No alignment, no padding — a format is exactly the sequence of
// calls made against it.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/diag.h"

namespace amg::util {

class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  void le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i)
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
  std::vector<std::uint8_t> out_;
};

class WireReader {
 public:
  /// `onTruncation` is thrown (as util::DiagError) whenever a read would
  /// pass the end of the buffer; fill in the owning format's stable code.
  WireReader(const std::vector<std::uint8_t>& b, util::Diag onTruncation)
      : b_(b), truncDiag_(std::move(onTruncation)) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(le(8)); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (pos_ + n > b_.size()) truncated();
    std::string s(b_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  b_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }
  bool done() const { return pos_ == b_.size(); }
  std::size_t position() const { return pos_; }

 private:
  [[noreturn]] void truncated() { throw util::DiagError(truncDiag_); }
  std::uint64_t le(int bytes) {
    if (pos_ + static_cast<std::size_t>(bytes) > b_.size()) truncated();
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
      v |= static_cast<std::uint64_t>(b_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }
  const std::vector<std::uint8_t>& b_;
  util::Diag truncDiag_;
  std::size_t pos_ = 0;
};

}  // namespace amg::util
