#include "primitives/primitives.h"

#include "util/diag.h"

#include <algorithm>

#include "obs/obs.h"

namespace amg::prim {
namespace {

/// Rule failure with structured payload: still a DesignRuleError (so the
/// interpreter's VARIANT backtracking catches it), plus a stable
/// AMG-PRIM-* code and a remediation hint for batch reports.
[[noreturn]] void fail(const char* code, std::string msg, std::string hint) {
  throw util::DesignRuleDiag(util::Diag{code, std::move(msg), {}, std::move(hint)});
}


using tech::LayerKind;
using tech::Technology;

// Cut and marker shapes never act as enclosing rectangles.
bool canEnclose(const Technology& t, LayerId l) {
  const LayerKind k = t.info(l).kind;
  return k != LayerKind::Cut && k != LayerKind::Marker;
}

std::vector<ShapeId> resolveOuters(const Module& m, std::vector<ShapeId> given) {
  if (!given.empty()) return given;
  std::vector<ShapeId> out;
  for (ShapeId id : m.shapeIds())
    if (canEnclose(m.technology(), m.shape(id).layer)) out.push_back(id);
  return out;
}

// Minimum legal dimensions of a rectangle on `layer`.
std::pair<Coord, Coord> minDims(const Technology& t, LayerId layer) {
  if (t.info(layer).kind == LayerKind::Cut) return t.cutSize(layer);
  const Coord w = t.minWidth(layer);
  return {w, w};
}

void checkRequestedDim(const Technology& t, LayerId layer, const char* what,
                       std::optional<Coord> req, Coord min) {
  if (req && *req < min)
    fail("AMG-PRIM-001",
         std::string("layer '") + t.info(layer).name + "': requested " + what + " " +
             std::to_string(*req) + " is below the minimum of " + std::to_string(min),
         "raise the requested dimension or omit it to take the rule minimum");
}

// Equidistant 1-D placement of `n` elements of size `sz` over [lo, hi]
// with at least `minGap` between elements: even spreading when possible,
// otherwise minimum pitch centred ("placed equidistantly to minimize the
// contact resistance", §2.2).
std::vector<Coord> spread(Coord lo, Coord hi, int n, Coord sz, Coord minGap) {
  std::vector<Coord> pos;
  pos.reserve(static_cast<std::size_t>(n));
  const Coord w = hi - lo;
  const Coord free = w - n * sz;
  if (free / (n + 1) >= minGap) {
    // Even spread: element i starts after (i+1) equal gaps and i elements.
    for (int i = 0; i < n; ++i)
      pos.push_back(lo + (static_cast<Coord>(i) + 1) * free / (n + 1) + i * sz);
  } else {
    // Pack at minimum pitch, centre the block.
    const Coord block = n * sz + (n - 1) * minGap;
    const Coord start = lo + (w - block) / 2;
    for (int i = 0; i < n; ++i) pos.push_back(start + i * (sz + minGap));
  }
  return pos;
}

}  // namespace

Box interiorOf(const Module& m, const std::vector<ShapeId>& containers,
               LayerId innerLayer) {
  const Technology& t = m.technology();
  Box region;
  bool first = true;
  for (ShapeId id : containers) {
    const db::Shape& s = m.shape(id);
    const Coord margin = t.enclosure(s.layer, innerLayer).value_or(0);
    const Box inner = s.box.expanded(-margin);
    if (inner.empty()) return Box{};
    region = first ? inner : region.intersect(inner);
    first = false;
    if (region.empty()) return Box{};
  }
  return region;
}

void expandOuters(Module& m, const std::vector<ShapeId>& outers, LayerId innerLayer,
                  const Box& needed) {
  const Technology& t = m.technology();
  for (ShapeId id : outers) {
    db::Shape& s = m.shape(id);
    if (t.info(s.layer).kind == LayerKind::Cut)
      fail("AMG-PRIM-002",
           "cannot expand fixed-size cut rectangle on layer '" +
               t.info(s.layer).name + "'",
           "cuts have a technology-fixed footprint; enlarge the enclosing "
           "rectangles instead");
    const Coord margin = t.enclosure(s.layer, innerLayer).value_or(0);
    s.box = s.box.unite(needed.expanded(margin));
  }
}

ShapeId inbox(Module& m, LayerId layer, std::optional<Coord> w, std::optional<Coord> h,
              NetId net, std::vector<ShapeId> outers) {
  const Technology& t = m.technology();
  OBS_COUNT("prim.inbox.calls");
  outers = resolveOuters(m, std::move(outers));
  const auto [minW, minH] = minDims(t, layer);
  checkRequestedDim(t, layer, "width", w, minW);
  checkRequestedDim(t, layer, "height", h, minH);

  if (outers.empty()) {
    // Free-standing: omitted dimensions take the minimum possible value.
    const Coord dw = w.value_or(minW);
    const Coord dh = h.value_or(minH);
    return m.addShape(db::makeShape(Box::fromSize(0, 0, dw, dh), layer, net));
  }

  const Coord needW = std::max(w.value_or(minW), minW);
  const Coord needH = std::max(h.value_or(minH), minH);
  Box region = interiorOf(m, outers, layer);
  if (region.empty() || region.width() < needW || region.height() < needH) {
    // "If the new rectangle cannot be placed inside the other rectangles,
    // all outer rectangles are expanded."
    OBS_COUNT("prim.inbox.expanded");
    OBS_LOG(Debug, "prim.inbox",
            "expanding " + std::to_string(outers.size()) + " outer rectangles on '" +
                t.info(layer).name + "'");
    Box anchor;
    for (ShapeId id : outers) anchor = anchor.unite(m.shape(id).box);
    const Point c = region.empty() ? anchor.center() : region.center();
    expandOuters(m, outers, layer, Box::centredOn(c, needW, needH));
    region = interiorOf(m, outers, layer);
  }

  const Coord dw = w.value_or(region.width());
  const Coord dh = h.value_or(region.height());
  const Coord x = region.x1 + (region.width() - dw) / 2;
  const Coord y = region.y1 + (region.height() - dh) / 2;
  const ShapeId id = m.addShape(db::makeShape(Box::fromSize(x, y, dw, dh), layer, net));
  m.addEncloseRecord(db::EncloseRecord{outers, id});
  return id;
}

ShapeId around(Module& m, LayerId layer, std::vector<ShapeId> targets, Coord extraMargin,
               NetId net) {
  const Technology& t = m.technology();
  OBS_COUNT("prim.around.calls");
  if (targets.empty()) targets = m.shapeIds();
  if (targets.empty())
    fail("AMG-PRIM-003",
         "AROUND on layer '" + t.info(layer).name + "': no structure to surround",
         "draw at least one rectangle (e.g. INBOX) before calling AROUND");
  Box b;
  for (ShapeId id : targets) {
    const db::Shape& s = m.shape(id);
    const Coord margin =
        std::max(t.enclosure(layer, s.layer).value_or(0), extraMargin);
    b = b.unite(s.box.expanded(margin));
  }
  // Respect the layer's own minimum width.
  const auto [minW, minH] = minDims(t, layer);
  if (b.width() < minW) b = b.expanded((minW - b.width() + 1) / 2, 0);
  if (b.height() < minH) b = b.expanded(0, (minH - b.height() + 1) / 2);
  const ShapeId id = m.addShape(db::makeShape(b, layer, net));
  m.addEncloseRecord(db::EncloseRecord{{id}, targets.front()});
  return id;
}

std::vector<ShapeId> array(Module& m, LayerId cutLayer, std::vector<ShapeId> containers,
                           NetId net) {
  const Technology& t = m.technology();
  if (t.info(cutLayer).kind != LayerKind::Cut)
    fail("AMG-PRIM-004",
         "ARRAY: layer '" + t.info(cutLayer).name + "' is not a cut layer",
         "ARRAY places contact/via cuts; pass a layer of kind 'cut'");
  OBS_COUNT("prim.array.calls");
  containers = resolveOuters(m, std::move(containers));
  if (containers.empty())
    fail("AMG-PRIM-004",
         "ARRAY on layer '" + t.info(cutLayer).name + "': no containing rectangles",
         "draw the container rectangles (e.g. INBOX) before calling ARRAY");

  const auto [cw, ch] = t.cutSize(cutLayer);
  const Coord gap = t.minSpacing(cutLayer, cutLayer).value_or(0);

  Box region = interiorOf(m, containers, cutLayer);
  if (region.empty() || region.width() < cw || region.height() < ch) {
    // "If no rectangle can be placed, the outer geometries are expanded so
    // that at least one rectangle can be generated."
    OBS_COUNT("prim.array.expanded");
    Box anchor;
    for (ShapeId id : containers) anchor = anchor.unite(m.shape(id).box);
    const Point c = region.empty() ? anchor.center() : region.center();
    expandOuters(m, containers, cutLayer, Box::centredOn(c, cw, ch));
    region = interiorOf(m, containers, cutLayer);
  }

  const int nx = static_cast<int>((region.width() + gap) / (cw + gap));
  const int ny = static_cast<int>((region.height() + gap) / (ch + gap));
  const auto xs = spread(region.x1, region.x2, std::max(nx, 1), cw, gap);
  const auto ys = spread(region.y1, region.y2, std::max(ny, 1), ch, gap);

  std::vector<ShapeId> elems;
  elems.reserve(xs.size() * ys.size());
  for (const Coord y : ys)
    for (const Coord x : xs)
      elems.push_back(m.addShape(db::makeShape(Box::fromSize(x, y, cw, ch), cutLayer, net)));
  m.addArrayRecord(db::ArrayRecord{containers, cutLayer, net, elems});
  return elems;
}

std::vector<ShapeId> polygon(Module& m, LayerId layer, const geom::Polygon& poly,
                             NetId net) {
  std::vector<ShapeId> out;
  for (const Box& b : geom::decompose(poly))
    out.push_back(m.addShape(db::makeShape(b, layer, net)));
  if (out.empty())
    fail("AMG-PRIM-005",
         "POLYGON: empty decomposition on layer '" +
             m.technology().info(layer).name + "'",
         "the outline must be a closed rectilinear loop with non-zero area");
  return out;
}

void rebuildArray(Module& m, db::ArrayRecord& rec) {
  const Technology& t = m.technology();
  OBS_COUNT("prim.array.rebuilds");
  const auto [cw, ch] = t.cutSize(rec.elemLayer);
  const Coord gap = t.minSpacing(rec.elemLayer, rec.elemLayer).value_or(0);

  Box region = interiorOf(m, rec.containers, rec.elemLayer);
  if (region.empty() || region.width() < cw || region.height() < ch) {
    Box anchor;
    for (ShapeId id : rec.containers) anchor = anchor.unite(m.shape(id).box);
    const Point c = region.empty() ? anchor.center() : region.center();
    expandOuters(m, rec.containers, rec.elemLayer, Box::centredOn(c, cw, ch));
    region = interiorOf(m, rec.containers, rec.elemLayer);
  }

  for (ShapeId id : rec.elems) m.removeShape(id);
  rec.elems.clear();

  const int nx = static_cast<int>((region.width() + gap) / (cw + gap));
  const int ny = static_cast<int>((region.height() + gap) / (ch + gap));
  const auto xs = spread(region.x1, region.x2, std::max(nx, 1), cw, gap);
  const auto ys = spread(region.y1, region.y2, std::max(ny, 1), ch, gap);
  for (const Coord y : ys)
    for (const Coord x : xs)
      rec.elems.push_back(
          m.addShape(db::makeShape(Box::fromSize(x, y, cw, ch), rec.elemLayer, rec.net)));
}

std::vector<ShapeId> ring(Module& m, LayerId layer, std::optional<Coord> width,
                          std::optional<Coord> gap, std::vector<ShapeId> targets,
                          NetId net) {
  const Technology& t = m.technology();
  OBS_COUNT("prim.ring.calls");
  if (targets.empty()) targets = m.shapeIds();
  if (targets.empty())
    fail("AMG-PRIM-003",
         "RING on layer '" + t.info(layer).name + "': no structure to surround",
         "draw at least one rectangle (e.g. INBOX) before calling RING");
  const Coord wd = width.value_or(minDims(t, layer).first);
  checkRequestedDim(t, layer, "ring width", width, minDims(t, layer).first);

  Coord g = 0;
  Box bb;
  for (ShapeId id : targets) {
    const db::Shape& s = m.shape(id);
    bb = bb.unite(s.box);
    g = std::max(g, t.minSpacing(layer, s.layer).value_or(0));
  }
  if (gap) g = std::max(g, *gap);

  const Box inner = bb.expanded(g);
  const Box outer = inner.expanded(wd);
  std::vector<ShapeId> out;
  out.push_back(m.addShape(db::makeShape(Box{outer.x1, outer.y1, inner.x1, outer.y2}, layer, net)));
  out.push_back(m.addShape(db::makeShape(Box{inner.x1, outer.y1, inner.x2, inner.y1}, layer, net)));
  out.push_back(m.addShape(db::makeShape(Box{inner.x2, outer.y1, outer.x2, outer.y2}, layer, net)));
  out.push_back(m.addShape(db::makeShape(Box{inner.x1, inner.y2, inner.x2, outer.y2}, layer, net)));
  return out;
}

std::pair<ShapeId, ShapeId> tworects(Module& m, LayerId layerA, LayerId layerB,
                                     Coord chanW, Coord chanL, NetId netA, NetId netB) {
  const Technology& t = m.technology();
  if (chanL < t.minWidth(layerA))
    fail("AMG-PRIM-006",
         "TWORECTS: channel length " + std::to_string(chanL) +
             " below minimum width of '" + t.info(layerA).name + "'",
         "the L parameter must be at least the gate layer's minimum width");
  if (chanW < t.minWidth(layerB))
    fail("AMG-PRIM-006",
         "TWORECTS: channel width " + std::to_string(chanW) +
             " below minimum width of '" + t.info(layerB).name + "'",
         "the W parameter must be at least the diffusion layer's minimum width");
  const Coord endcap = t.extension(layerA, layerB).value_or(0);
  const Coord overhang = t.extension(layerB, layerA).value_or(0);
  // Channel occupies [0, chanL] x [0, chanW]; gate is the vertical stripe.
  const ShapeId gate = m.addShape(
      db::makeShape(Box{0, -endcap, chanL, chanW + endcap}, layerA, netA));
  const ShapeId diff = m.addShape(
      db::makeShape(Box{-overhang, 0, chanL + overhang, chanW}, layerB, netB));
  return {gate, diff};
}

std::pair<ShapeId, ShapeId> angleAdaptor(Module& m, LayerId layer, Point corner,
                                         Coord lenH, Coord lenV,
                                         std::optional<Coord> width, NetId net) {
  const Technology& t = m.technology();
  const Coord wd = width.value_or(t.minWidth(layer));
  checkRequestedDim(t, layer, "wire width", width, t.minWidth(layer));
  if (lenH == 0 || lenV == 0)
    fail("AMG-PRIM-007", "angle adaptor: both arm lengths must be non-zero",
         "pass non-zero lenH and lenV (they may be negative for direction)");

  const Coord hx2 = corner.x + lenH + (lenH > 0 ? wd / 2 : -wd / 2);
  const Box harm = Box::fromCorners(corner.x - (lenH > 0 ? wd / 2 : -wd / 2), corner.y - wd / 2,
                                    hx2, corner.y + wd - wd / 2);
  const Coord vy2 = corner.y + lenV + (lenV > 0 ? wd / 2 : -wd / 2);
  const Box varm = Box::fromCorners(corner.x - wd / 2, corner.y - (lenV > 0 ? wd / 2 : -wd / 2),
                                    corner.x + wd - wd / 2, vy2);
  const ShapeId h = m.addShape(db::makeShape(harm, layer, net));
  const ShapeId v = m.addShape(db::makeShape(varm, layer, net));
  return {h, v};
}

}  // namespace amg::prim
