// Memoized rule-query layer over tech::Technology.
//
// The successive compactor asks the same layer-pair questions — "what is
// the minimum spacing between a and b?", "is this layer conducting?" —
// once per shape pair per compaction step, and the §2.4 optimizer repeats
// every step under n! orders.  Technology answers from hash maps keyed by
// packed layer pairs, which is correct but costs a hash + probe per query
// and is needlessly slow on the innermost loop.
//
// RuleCache is a flat, dense, immutable snapshot of those answers: one
// Coord per (layer, layer) cell with a sentinel for "no rule", one record
// per layer for width/kind/conductivity/cut size.  It is built once from a
// finished Technology (see Technology::rules()) and never mutated, so
// concurrent readers need no synchronisation — the parallel optimizer's
// workers all read the same cache lock-free.
//
// Every accessor is a drop-in for the Technology method of the same name
// and must return byte-identical results; tests/rulecache_test.cpp checks
// that equivalence exhaustively for both shipped decks.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "geom/coord.h"
#include "tech/tech.h"

namespace amg::tech {

class RuleCache {
 public:
  /// Snapshot the rule tables of `t`.  The cache keeps no reference to the
  /// Technology; it is valid independently of the source object's lifetime.
  explicit RuleCache(const Technology& t);

  std::size_t layerCount() const { return n_; }

  /// Mirrors Technology::minSpacing (symmetric in a, b).
  std::optional<Coord> minSpacing(LayerId a, LayerId b) const {
    return fromCell(spacing_[cell(a, b)]);
  }
  /// Largest spacing rule `l` has against any layer (0 when it has none):
  /// the query halo a spatial-index consumer must use so that every pair
  /// (l, *) with gap below its rule is among the candidates.
  Coord maxSpacing(LayerId l) const { return maxSpacing_[l]; }

  /// Mirrors Technology::enclosure (ordered: outer, inner).
  std::optional<Coord> enclosure(LayerId outer, LayerId inner) const {
    return fromCell(enclosure_[cell(outer, inner)]);
  }
  /// Mirrors Technology::extension (ordered).
  std::optional<Coord> extension(LayerId a, LayerId b) const {
    return fromCell(extension_[cell(a, b)]);
  }
  /// True when either extension(a, b) or extension(b, a) exists — the
  /// compactor's "these layers form a device when crossing" test, one load
  /// instead of two map probes.
  bool formsDevice(LayerId a, LayerId b) const { return devicePair_[cell(a, b)]; }

  /// Mirrors Technology::findMinWidth (including the cut-size fallback).
  std::optional<Coord> findMinWidth(LayerId l) const {
    return fromCell(minWidth_[l]);
  }
  /// Mirrors Technology::cutSize for cut layers; std::nullopt otherwise
  /// (instead of the Technology's throw, so hot paths need no try/catch).
  std::optional<std::pair<Coord, Coord>> findCutSize(LayerId l) const {
    if (cutW_[l] == kNoRule) return std::nullopt;
    return std::make_pair(cutW_[l], cutH_[l]);
  }

  LayerKind kind(LayerId l) const { return kind_[l]; }
  bool conducting(LayerId l) const { return conducting_[l]; }

 private:
  static constexpr Coord kNoRule = std::numeric_limits<Coord>::min();

  std::size_t cell(LayerId a, LayerId b) const {
    return static_cast<std::size_t>(a) * n_ + b;
  }
  static std::optional<Coord> fromCell(Coord c) {
    if (c == kNoRule) return std::nullopt;
    return c;
  }

  std::size_t n_ = 0;
  std::vector<Coord> spacing_;    // n*n, symmetric
  std::vector<Coord> maxSpacing_; // n, max over partners (0 = no rule)
  std::vector<Coord> enclosure_;  // n*n, ordered (outer, inner)
  std::vector<Coord> extension_;  // n*n, ordered
  std::vector<char> devicePair_;  // n*n, extension(a,b) or extension(b,a)
  std::vector<Coord> minWidth_;   // n
  std::vector<Coord> cutW_, cutH_;  // n, kNoRule for non-cut layers
  std::vector<LayerKind> kind_;   // n
  std::vector<char> conducting_;  // n
};

}  // namespace amg::tech
