#include "tech/tech.h"

#include <algorithm>
#include <mutex>

#include "tech/rulecache.h"
#include "tech/techfile.h"
#include "util/hash.h"

namespace amg::tech {

/// One lazily-built cache per rule-table state.  A mutation replaces the
/// whole slot (never the cache inside a published slot), so readers that
/// fetched rules() before the mutation keep a consistent snapshot.  The
/// content fingerprint shares the slot: it is invalidated by exactly the
/// same mutations.
struct Technology::CacheSlot {
  std::once_flag once;
  std::unique_ptr<const RuleCache> cache;
  std::once_flag fpOnce;
  std::uint64_t fingerprint = 0;
};

Technology::Technology(std::string name)
    : name_(std::move(name)), cacheSlot_(std::make_shared<CacheSlot>()) {}

const RuleCache& Technology::rules() const {
  CacheSlot& slot = *cacheSlot_;
  std::call_once(slot.once,
                 [&] { slot.cache = std::make_unique<const RuleCache>(*this); });
  return *slot.cache;
}

std::uint64_t Technology::contentFingerprint() const {
  CacheSlot& slot = *cacheSlot_;
  std::call_once(slot.fpOnce,
                 [&] { slot.fingerprint = util::fnv1a(saveTechFile(*this)); });
  return slot.fingerprint;
}

void Technology::invalidateRules() { cacheSlot_ = std::make_shared<CacheSlot>(); }

LayerId Technology::addLayer(LayerInfo info) {
  if (byName_.contains(info.name))
    throw DesignRuleError("technology '" + name_ + "': duplicate layer '" + info.name + "'");
  const LayerId id = static_cast<LayerId>(layers_.size());
  byName_.emplace(info.name, id);
  layers_.push_back(std::move(info));
  invalidateRules();
  return id;
}

void Technology::setMinWidth(LayerId l, Coord w) {
  minWidth_[l] = w;
  invalidateRules();
}

void Technology::setMinSpacing(LayerId a, LayerId b, Coord s) {
  spacing_[pairKey(a, b)] = s;
  invalidateRules();
}

void Technology::setEnclosure(LayerId outer, LayerId inner, Coord e) {
  enclosure_[orderedKey(outer, inner)] = e;
  invalidateRules();
}

void Technology::setExtension(LayerId a, LayerId b, Coord e) {
  extension_[orderedKey(a, b)] = e;
  invalidateRules();
}

void Technology::setCutSize(LayerId cut, Coord w, Coord h) {
  cutSize_[cut] = {w, h};
  invalidateRules();
}

void Technology::addCutConnection(LayerId cut, LayerId a, LayerId b) {
  cutConns_.push_back(CutConn{cut, a, b});
  invalidateRules();
}

LayerId Technology::layer(std::string_view name) const {
  if (auto l = findLayer(name)) return *l;
  throw DesignRuleError("technology '" + name_ + "': unknown layer '" +
                        std::string(name) + "'");
}

std::optional<LayerId> Technology::findLayer(std::string_view name) const {
  auto it = byName_.find(std::string(name));
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

Coord Technology::minWidth(LayerId l) const {
  if (auto w = findMinWidth(l)) return *w;
  throw DesignRuleError("technology '" + name_ + "': no minimum width for layer '" +
                        info(l).name + "'");
}

std::optional<Coord> Technology::findMinWidth(LayerId l) const {
  auto it = minWidth_.find(l);
  if (it != minWidth_.end()) return it->second;
  if (auto cs = cutSize_.find(l); cs != cutSize_.end())
    return std::min(cs->second.first, cs->second.second);
  return std::nullopt;
}

std::optional<Coord> Technology::minSpacing(LayerId a, LayerId b) const {
  auto it = spacing_.find(pairKey(a, b));
  if (it == spacing_.end()) return std::nullopt;
  return it->second;
}

std::optional<Coord> Technology::enclosure(LayerId outer, LayerId inner) const {
  auto it = enclosure_.find(orderedKey(outer, inner));
  if (it == enclosure_.end()) return std::nullopt;
  return it->second;
}

std::optional<Coord> Technology::extension(LayerId a, LayerId b) const {
  auto it = extension_.find(orderedKey(a, b));
  if (it == extension_.end()) return std::nullopt;
  return it->second;
}

std::pair<Coord, Coord> Technology::cutSize(LayerId cut) const {
  auto it = cutSize_.find(cut);
  if (it == cutSize_.end())
    throw DesignRuleError("technology '" + name_ + "': layer '" + info(cut).name +
                          "' has no cut size");
  return it->second;
}

bool Technology::cutConnects(LayerId cut, LayerId a, LayerId b) const {
  return std::any_of(cutConns_.begin(), cutConns_.end(), [&](const CutConn& c) {
    return c.cut == cut && ((c.a == a && c.b == b) || (c.a == b && c.b == a));
  });
}

std::vector<std::pair<LayerId, LayerId>> Technology::cutConnections(LayerId cut) const {
  std::vector<std::pair<LayerId, LayerId>> out;
  for (const CutConn& c : cutConns_)
    if (c.cut == cut) out.emplace_back(c.a, c.b);
  return out;
}

std::vector<LayerId> Technology::cutsBetween(LayerId a, LayerId b) const {
  std::vector<LayerId> out;
  for (const CutConn& c : cutConns_) {
    if ((c.a == a && c.b == b) || (c.a == b && c.b == a)) {
      if (std::find(out.begin(), out.end(), c.cut) == out.end()) out.push_back(c.cut);
    }
  }
  return out;
}

std::vector<LayerId> Technology::activeLayers() const {
  std::vector<LayerId> out;
  for (LayerId l = 0; l < layers_.size(); ++l)
    if (layers_[l].kind == LayerKind::Diffusion) out.push_back(l);
  return out;
}

std::vector<LayerId> Technology::conductingLayers() const {
  std::vector<LayerId> out;
  for (LayerId l = 0; l < layers_.size(); ++l)
    if (layers_[l].conducting) out.push_back(l);
  return out;
}

}  // namespace amg::tech
