// Built-in technology decks.
//
// The paper demonstrates the environment in a 1 µm Siemens BiCMOS process
// whose rule deck is proprietary; bicmos1u() is a plausible substitute with
// the same *kinds* of rules (see DESIGN.md §2).  cmos2u() is a coarser
// CMOS-only deck used by tests to prove technology independence of the
// module generators.
#pragma once

#include "tech/tech.h"

namespace amg::tech {

/// 1 µm two-metal BiCMOS deck (MOS + vertical npn layers).  Layer names
/// used by the module library: nwell, pdiff, ndiff, ptie, poly, contact,
/// metal1, via, metal2, pbase, nplus, guard.
const Technology& bicmos1u();

/// 2 µm single-poly two-metal pure-CMOS deck with the same layer names
/// minus the bipolar layers; all rule values roughly doubled.
const Technology& cmos2u();

}  // namespace amg::tech
