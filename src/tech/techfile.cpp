#include "tech/techfile.h"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "util/diag.h"

namespace amg::tech {
namespace {

/// Structured parse failure: every techfile diagnostic carries the file
/// name, the 1-based line, a stable AMG-TECH-* code, and a hint.
[[noreturn]] void fail(std::string code, std::string msg, const std::string& file,
                       int line, std::string hint) {
  throw util::DiagError(util::Diag{std::move(code), std::move(msg),
                                   {file, line, 0}, std::move(hint)});
}

LayerKind kindFromName(const std::string& s, const std::string& file, int line) {
  static const std::map<std::string, LayerKind> kKinds = {
      {"well", LayerKind::Well},         {"diffusion", LayerKind::Diffusion},
      {"poly", LayerKind::Poly},         {"metal", LayerKind::Metal},
      {"cut", LayerKind::Cut},           {"implant", LayerKind::Implant},
      {"marker", LayerKind::Marker},
  };
  auto it = kKinds.find(s);
  if (it == kKinds.end())
    fail("AMG-TECH-004", "unknown layer kind '" + s + "'", file, line,
         "kinds are: well diffusion poly metal cut implant marker");
  return it->second;
}

const char* kindName(LayerKind k) {
  switch (k) {
    case LayerKind::Well: return "well";
    case LayerKind::Diffusion: return "diffusion";
    case LayerKind::Poly: return "poly";
    case LayerKind::Metal: return "metal";
    case LayerKind::Cut: return "cut";
    case LayerKind::Implant: return "implant";
    case LayerKind::Marker: return "marker";
  }
  return "marker";
}

// Splits a line into whitespace-separated tokens.  A '#' starts a comment
// only at the beginning of a token, so colour values like "color=#4f6fcf"
// survive.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok.front() == '#') break;
    out.push_back(tok);
  }
  return out;
}

Coord parseValue(const std::string& s, const std::string& file, int line) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return static_cast<Coord>(v);
  } catch (const std::exception&) {
    fail("AMG-TECH-005", "expected an integer rule value, got '" + s + "'", file,
         line, "rule values are whole nanometres (unit nm)");
  }
}

// Parses "key=value" attributes of a layer directive.
std::optional<std::string> attr(const std::vector<std::string>& toks,
                                const std::string& key) {
  const std::string prefix = key + "=";
  for (const auto& t : toks)
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  return std::nullopt;
}

}  // namespace

Technology parseTechFile(std::istream& in, const std::string& sourceName) {
  std::optional<Technology> tech;
  std::string line;
  int lineNo = 0;

  auto need = [&](const std::vector<std::string>& toks, std::size_t n) {
    if (toks.size() < n)
      fail("AMG-TECH-002",
           "directive '" + toks[0] + "' needs " + std::to_string(n - 1) +
               " arguments",
           sourceName, lineNo, "see docs/TECHFILE.md for every directive's form");
  };
  auto techRef = [&]() -> Technology& {
    if (!tech)
      fail("AMG-TECH-003", "'tech <name>' must be the first directive", sourceName,
           lineNo, "start the file with a line like 'tech mytech'");
    return *tech;
  };
  // Resolve a layer name, turning the unknown-layer DesignRuleError into a
  // located diagnostic.
  auto layerRef = [&](const std::string& name) -> LayerId {
    try {
      return techRef().layer(name);
    } catch (const DesignRuleError&) {
      fail("AMG-TECH-006", "unknown layer '" + name + "'", sourceName, lineNo,
           "declare it with a 'layer " + name + " <kind> ...' directive first");
    }
  };

  while (std::getline(in, line)) {
    ++lineNo;
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    const std::string& cmd = toks[0];

    if (cmd == "tech") {
      need(toks, 2);
      if (tech)
        fail("AMG-TECH-003", "duplicate 'tech' directive", sourceName, lineNo,
             "a deck declares its name exactly once");
      tech.emplace(toks[1]);
    } else if (cmd == "unit") {
      need(toks, 2);
      if (toks[1] != "nm")
        fail("AMG-TECH-003", "only 'unit nm' is supported", sourceName, lineNo,
             "express rule values in nanometres and declare 'unit nm'");
    } else if (cmd == "layer") {
      need(toks, 3);
      LayerInfo li;
      li.name = toks[1];
      li.kind = kindFromName(toks[2], sourceName, lineNo);
      if (auto v = attr(toks, "cif"))
        li.cifId = static_cast<int>(parseValue(*v, sourceName, lineNo));
      li.color = attr(toks, "color").value_or("#888888");
      li.pattern = attr(toks, "pattern").value_or("solid");
      for (const auto& t : toks)
        if (t == "conducting") li.conducting = true;
      techRef().addLayer(std::move(li));
    } else if (cmd == "width") {
      need(toks, 3);
      techRef().setMinWidth(layerRef(toks[1]), parseValue(toks[2], sourceName, lineNo));
    } else if (cmd == "space") {
      need(toks, 4);
      techRef().setMinSpacing(layerRef(toks[1]), layerRef(toks[2]),
                              parseValue(toks[3], sourceName, lineNo));
    } else if (cmd == "enclose") {
      need(toks, 4);
      techRef().setEnclosure(layerRef(toks[1]), layerRef(toks[2]),
                             parseValue(toks[3], sourceName, lineNo));
    } else if (cmd == "extend") {
      need(toks, 4);
      techRef().setExtension(layerRef(toks[1]), layerRef(toks[2]),
                             parseValue(toks[3], sourceName, lineNo));
    } else if (cmd == "cutsize") {
      need(toks, 4);
      techRef().setCutSize(layerRef(toks[1]), parseValue(toks[2], sourceName, lineNo),
                           parseValue(toks[3], sourceName, lineNo));
    } else if (cmd == "connect") {
      need(toks, 4);
      techRef().addCutConnection(layerRef(toks[1]), layerRef(toks[2]),
                                 layerRef(toks[3]));
    } else if (cmd == "latchup") {
      need(toks, 2);
      techRef().setLatchUpRadius(parseValue(toks[1], sourceName, lineNo));
    } else if (cmd == "guard") {
      need(toks, 2);
      techRef().setGuardLayer(layerRef(toks[1]));
    } else if (cmd == "tie") {
      need(toks, 2);
      techRef().setSubstrateTieLayer(layerRef(toks[1]));
    } else {
      fail("AMG-TECH-001", "unknown directive '" + cmd + "'", sourceName, lineNo,
           "directives: tech unit layer width space enclose extend cutsize "
           "connect latchup guard tie (docs/TECHFILE.md)");
    }
  }

  if (!tech)
    fail("AMG-TECH-003", "empty technology file", sourceName, 0,
         "a deck needs at least a 'tech <name>' directive");
  return std::move(*tech);
}

Technology parseTechString(const std::string& text, const std::string& sourceName) {
  std::istringstream is(text);
  return parseTechFile(is, sourceName);
}

Technology loadTechFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    util::Diag d;
    d.code = "AMG-TECH-007";
    d.message = "cannot open technology file '" + path + "'";
    d.loc.file = path;
    d.hint = "check the path; shipped decks live in tech/";
    throw util::DiagError(std::move(d));
  }
  return parseTechFile(f, path);
}

std::string saveTechFile(const Technology& t) {
  std::ostringstream os;
  os << "tech " << t.name() << "\n";
  os << "unit nm\n";
  const auto n = static_cast<LayerId>(t.layerCount());
  for (LayerId l = 0; l < n; ++l) {
    const LayerInfo& li = t.info(l);
    os << "layer " << li.name << ' ' << kindName(li.kind) << " cif=" << li.cifId
       << " color=" << li.color << " pattern=" << li.pattern
       << (li.conducting ? " conducting" : "") << "\n";
  }
  for (LayerId l = 0; l < n; ++l) {
    const LayerInfo& li = t.info(l);
    if (li.kind == LayerKind::Cut) {
      const auto [w, h] = t.cutSize(l);
      os << "cutsize " << li.name << ' ' << w << ' ' << h << "\n";
    } else if (auto w = t.findMinWidth(l)) {
      os << "width " << li.name << ' ' << *w << "\n";
    }
  }
  for (LayerId a = 0; a < n; ++a)
    for (LayerId b = a; b < n; ++b)
      if (auto s = t.minSpacing(a, b))
        os << "space " << t.info(a).name << ' ' << t.info(b).name << ' ' << *s << "\n";
  for (LayerId a = 0; a < n; ++a)
    for (LayerId b = 0; b < n; ++b) {
      if (auto e = t.enclosure(a, b))
        os << "enclose " << t.info(a).name << ' ' << t.info(b).name << ' ' << *e << "\n";
      if (auto e = t.extension(a, b))
        os << "extend " << t.info(a).name << ' ' << t.info(b).name << ' ' << *e << "\n";
    }
  for (LayerId l = 0; l < n; ++l)
    for (const auto& [a, b] : t.cutConnections(l))
      os << "connect " << t.info(l).name << ' ' << t.info(a).name << ' '
         << t.info(b).name << "\n";
  if (t.latchUpRadius() > 0) os << "latchup " << t.latchUpRadius() << "\n";
  if (t.guardLayer() != kNoLayer) os << "guard " << t.info(t.guardLayer()).name << "\n";
  if (t.substrateTieLayer() != kNoLayer)
    os << "tie " << t.info(t.substrateTieLayer()).name << "\n";
  return os.str();
}

}  // namespace amg::tech
