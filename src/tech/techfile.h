// Text format for technology description files.
//
// One directive per line; '#' starts a comment.  Grammar (all rule values
// in the declared unit):
//
//   tech <name>
//   unit nm
//   layer <name> <kind> cif=<int> color=<#rrggbb> pattern=<name> [conducting]
//   width <layer> <value>
//   space <layerA> <layerB> <value>
//   enclose <outer> <inner> <value>
//   extend <layerA> <layerB> <value>
//   cutsize <cut> <w> <h>
//   connect <cut> <layerA> <layerB>
//   latchup <radius>
//   guard <marker-layer>
//   tie <diffusion-layer>
//
// <kind> is one of: well diffusion poly metal cut implant marker.
#pragma once

#include <iosfwd>
#include <string>

#include "tech/tech.h"

namespace amg::tech {

/// Parse a deck from a stream; throws amg::Error with a line number on any
/// syntax or consistency problem.
Technology parseTechFile(std::istream& in, const std::string& sourceName = "<tech>");

/// Parse a deck from a string (convenience for tests).
Technology parseTechString(const std::string& text, const std::string& sourceName = "<tech>");

/// Parse a deck from a file path.
Technology loadTechFile(const std::string& path);

/// Serialize a deck into the text format; parseTechString(saveTechFile(t))
/// reproduces the deck (round-trip property, covered by tests).
std::string saveTechFile(const Technology& t);

}  // namespace amg::tech
