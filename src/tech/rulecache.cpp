#include "tech/rulecache.h"

#include <algorithm>

namespace amg::tech {

RuleCache::RuleCache(const Technology& t) : n_(t.layerCount()) {
  spacing_.assign(n_ * n_, kNoRule);
  enclosure_.assign(n_ * n_, kNoRule);
  extension_.assign(n_ * n_, kNoRule);
  devicePair_.assign(n_ * n_, 0);
  minWidth_.assign(n_, kNoRule);
  cutW_.assign(n_, kNoRule);
  cutH_.assign(n_, kNoRule);
  kind_.resize(n_);
  conducting_.resize(n_);

  for (LayerId a = 0; a < n_; ++a) {
    kind_[a] = t.info(a).kind;
    conducting_[a] = t.info(a).conducting ? 1 : 0;
    if (auto w = t.findMinWidth(a)) minWidth_[a] = *w;
    try {
      // Any layer may carry a cut size (Technology keys the table by layer,
      // not by kind); mirror exactly what cutSize() would answer.
      const auto [w, h] = t.cutSize(a);
      cutW_[a] = w;
      cutH_[a] = h;
    } catch (const DesignRuleError&) {
      // no cut size for this layer
    }
    for (LayerId b = 0; b < n_; ++b) {
      if (auto s = t.minSpacing(a, b)) spacing_[cell(a, b)] = *s;
      if (auto e = t.enclosure(a, b)) enclosure_[cell(a, b)] = *e;
      if (auto e = t.extension(a, b)) extension_[cell(a, b)] = *e;
    }
  }
  for (LayerId a = 0; a < n_; ++a)
    for (LayerId b = 0; b < n_; ++b)
      devicePair_[cell(a, b)] =
          extension_[cell(a, b)] != kNoRule || extension_[cell(b, a)] != kNoRule;

  maxSpacing_.assign(n_, 0);
  for (LayerId a = 0; a < n_; ++a)
    for (LayerId b = 0; b < n_; ++b)
      if (spacing_[cell(a, b)] != kNoRule)
        maxSpacing_[a] = std::max(maxSpacing_[a], spacing_[cell(a, b)]);
}

}  // namespace amg::tech
