// Technology description: layers and design rules.
//
// "The design rules are stored in a technology description file" (§1) —
// module code never contains a rule value; every geometric decision asks
// this class.  A Technology is immutable once built; decks are either
// built-in (builtin.h) or parsed from the text format (techfile.h).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geom/coord.h"

namespace amg::tech {

class RuleCache;

/// Index into the technology's layer table.
using LayerId = std::uint16_t;

/// Sentinel for "no layer".
inline constexpr LayerId kNoLayer = 0xFFFF;

/// Broad physical role of a layer; drives defaults (e.g. cut layers have a
/// fixed size) and the DRC checks that apply.
enum class LayerKind : std::uint8_t {
  Well,       ///< n-well / p-well
  Diffusion,  ///< active (LOCOS) areas: source/drain, substrate ties
  Poly,       ///< polysilicon gates and wires
  Metal,      ///< interconnect metals
  Cut,        ///< contacts and vias: fixed-size, connect two layers
  Implant,    ///< base/emitter implants of the bipolar devices
  Marker,     ///< non-mask helper layers (e.g. latch-up guard regions)
};

/// Static per-layer data, including the display attributes of Fig. 4.
struct LayerInfo {
  std::string name;        ///< DSL-visible name, e.g. "metal1"
  LayerKind kind = LayerKind::Marker;
  int cifId = 0;           ///< numeric mask id used by the CIF writer
  std::string color;       ///< SVG fill colour ("#rrggbb")
  std::string pattern;     ///< fill pattern name: solid|diag|cross|dots|hatch
  bool conducting = false; ///< participates in connectivity / potentials
};

/// An immutable set of layers and design rules.
///
/// Rule queries follow the conventions:
///  * minSpacing(a, b): minimum separation between shapes on a and b that
///    are NOT on the same potential; std::nullopt means the layers may
///    overlap freely (no rule).
///  * enclosure(outer, inner): when a shape on `inner` must lie inside a
///    shape on `outer` (e.g. contact in metal1), the required margin.
///  * extension(a, b): where shapes on `a` and `b` cross (transistor
///    gates), `a` must extend past `b` by this much on both sides.
class Technology {
 public:
  /// --- construction (used by deck builders and the tech-file parser) ---
  explicit Technology(std::string name);

  LayerId addLayer(LayerInfo info);
  void setMinWidth(LayerId l, Coord w);
  void setMinSpacing(LayerId a, LayerId b, Coord s);
  void setEnclosure(LayerId outer, LayerId inner, Coord e);
  void setExtension(LayerId a, LayerId b, Coord e);
  /// Cuts have a technology-fixed footprint.
  void setCutSize(LayerId cut, Coord w, Coord h);
  /// Declare that `cut` electrically connects `a` and `b` when overlapping
  /// both.
  void addCutConnection(LayerId cut, LayerId a, LayerId b);
  /// Latch-up rule: every LOCOS area must be within `r` of a substrate
  /// contact (modelled as the guard rectangle of Fig. 1).
  void setLatchUpRadius(Coord r) { latchUpRadius_ = r; }
  /// The marker layer drawn around substrate contacts for the latch-up
  /// check.
  void setGuardLayer(LayerId l) { guardLayer_ = l; }
  /// The layer substrate contacts are made of (tie diffusion).
  void setSubstrateTieLayer(LayerId l) { tieLayer_ = l; }

  /// --- queries ---------------------------------------------------------
  const std::string& name() const { return name_; }
  std::size_t layerCount() const { return layers_.size(); }
  const LayerInfo& info(LayerId l) const { return layers_.at(l); }

  /// Resolve a layer by name; throws DesignRuleError on unknown names so a
  /// typo in module code produces the paper's "error message".
  LayerId layer(std::string_view name) const;
  std::optional<LayerId> findLayer(std::string_view name) const;

  /// Minimum legal width/height of a shape on `l` (cut layers: exact size).
  Coord minWidth(LayerId l) const;
  /// Like minWidth() but nullopt instead of throwing when no width rule
  /// exists (marker layers); used by the serializer and the DRC checker.
  std::optional<Coord> findMinWidth(LayerId l) const;
  /// Minimum spacing between different-potential shapes, nullopt = layers
  /// may overlap (no rule between them).
  std::optional<Coord> minSpacing(LayerId a, LayerId b) const;
  /// Required margin of `outer` around `inner`; nullopt if no enclosure
  /// relation exists between the layers.
  std::optional<Coord> enclosure(LayerId outer, LayerId inner) const;
  /// Required crossing extension (gate endcap / source-drain overhang);
  /// nullopt if the layers have no crossing rule.
  std::optional<Coord> extension(LayerId a, LayerId b) const;
  /// Exact cut footprint (w, h); throws for non-cut layers.
  std::pair<Coord, Coord> cutSize(LayerId cut) const;
  /// True when `cut` connects `a` and `b` (order-insensitive).
  bool cutConnects(LayerId cut, LayerId a, LayerId b) const;
  /// All (a, b) pairs connected by `cut`.
  std::vector<std::pair<LayerId, LayerId>> cutConnections(LayerId cut) const;
  /// All cut layers that can connect `a` and `b` directly.
  std::vector<LayerId> cutsBetween(LayerId a, LayerId b) const;

  Coord latchUpRadius() const { return latchUpRadius_; }
  LayerId guardLayer() const { return guardLayer_; }
  LayerId substrateTieLayer() const { return tieLayer_; }
  /// All diffusion-kind layers (the LOCOS areas of the latch-up rule).
  std::vector<LayerId> activeLayers() const;
  /// All conducting layers.
  std::vector<LayerId> conductingLayers() const;

  /// True when two shapes on layers a and b that touch/overlap are on the
  /// same electrical node *by construction* (same conducting layer).
  bool sameConductor(LayerId a, LayerId b) const { return a == b; }

  /// The memoized flat rule table (rulecache.h), built on first call.
  /// Every rule mutation invalidates it; the returned reference stays valid
  /// until the next mutation or the Technology's destruction.  Safe to call
  /// from several threads concurrently; reads on the returned RuleCache are
  /// lock-free, so hot paths should fetch the reference once and query it
  /// directly.
  const RuleCache& rules() const;

  /// FNV-1a digest of the saveTechFile() round-trip text: any rule or
  /// layer edit changes it.  Memoized in the same copy-on-invalidate slot
  /// as rules(), so per-step cache-key computation pays the serialization
  /// cost once per rule-table state, not once per call.
  std::uint64_t contentFingerprint() const;

 private:
  static std::uint32_t pairKey(LayerId a, LayerId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint32_t>(a) << 16) | b;
  }
  static std::uint32_t orderedKey(LayerId a, LayerId b) {
    return (static_cast<std::uint32_t>(a) << 16) | b;
  }

  std::string name_;
  std::vector<LayerInfo> layers_;
  std::unordered_map<std::string, LayerId> byName_;
  std::unordered_map<LayerId, Coord> minWidth_;
  std::unordered_map<std::uint32_t, Coord> spacing_;     // pairKey
  std::unordered_map<std::uint32_t, Coord> enclosure_;   // orderedKey
  std::unordered_map<std::uint32_t, Coord> extension_;   // orderedKey
  std::unordered_map<LayerId, std::pair<Coord, Coord>> cutSize_;
  struct CutConn {
    LayerId cut, a, b;
  };
  std::vector<CutConn> cutConns_;
  Coord latchUpRadius_ = 0;
  LayerId guardLayer_ = kNoLayer;
  LayerId tieLayer_ = kNoLayer;

  // Lazily-built rule cache.  The slot is shared on copy (the cache is an
  // immutable snapshot, so sharing is sound) and replaced wholesale by
  // every rule mutation (copy-on-invalidate keeps copies independent).
  struct CacheSlot;
  void invalidateRules();
  mutable std::shared_ptr<CacheSlot> cacheSlot_;
};

}  // namespace amg::tech
