#include "tech/builtin.h"

namespace amg::tech {
namespace {

// Helper that scales every rule value of the deck description; lets the
// 2 µm deck share the table below.
struct DeckBuilder {
  Technology t;
  double scale;

  Coord s(Coord nm) const { return static_cast<Coord>(nm * scale); }

  LayerId add(const char* name, LayerKind kind, int cif, const char* color,
              const char* pattern, bool conducting) {
    return t.addLayer(LayerInfo{name, kind, cif, color, pattern, conducting});
  }
};

Technology buildDeck(std::string name, double scale, bool withBipolar) {
  DeckBuilder b{Technology(std::move(name)), scale};

  const LayerId nwell = b.add("nwell", LayerKind::Well, 1, "#d8c690", "diag", false);
  const LayerId pdiff = b.add("pdiff", LayerKind::Diffusion, 3, "#7fbf7f", "solid", true);
  const LayerId ndiff = b.add("ndiff", LayerKind::Diffusion, 4, "#5faf9f", "solid", true);
  const LayerId ptie = b.add("ptie", LayerKind::Diffusion, 5, "#9f9f6f", "dots", true);
  const LayerId poly = b.add("poly", LayerKind::Poly, 10, "#cc4444", "solid", true);
  const LayerId contact = b.add("contact", LayerKind::Cut, 12, "#202020", "solid", false);
  const LayerId metal1 = b.add("metal1", LayerKind::Metal, 13, "#4f6fcf", "solid", true);
  const LayerId via = b.add("via", LayerKind::Cut, 14, "#303030", "cross", false);
  const LayerId metal2 = b.add("metal2", LayerKind::Metal, 15, "#9f5fbf", "diag", true);
  const LayerId guard = b.add("guard", LayerKind::Marker, 0, "#bbbbbb", "dots", false);

  // --- widths ----------------------------------------------------------
  b.t.setMinWidth(nwell, b.s(4000));
  b.t.setMinWidth(pdiff, b.s(1600));
  b.t.setMinWidth(ndiff, b.s(1600));
  b.t.setMinWidth(ptie, b.s(1600));
  b.t.setMinWidth(poly, b.s(1000));
  b.t.setMinWidth(metal1, b.s(1600));
  b.t.setMinWidth(metal2, b.s(2000));
  b.t.setCutSize(contact, b.s(1000), b.s(1000));
  b.t.setCutSize(via, b.s(1200), b.s(1200));

  // --- same-layer spacings ----------------------------------------------
  b.t.setMinSpacing(nwell, nwell, b.s(6000));
  b.t.setMinSpacing(pdiff, pdiff, b.s(2400));
  b.t.setMinSpacing(ndiff, ndiff, b.s(2400));
  b.t.setMinSpacing(ptie, ptie, b.s(2400));
  b.t.setMinSpacing(poly, poly, b.s(1200));
  b.t.setMinSpacing(metal1, metal1, b.s(1200));
  b.t.setMinSpacing(metal2, metal2, b.s(1600));
  b.t.setMinSpacing(contact, contact, b.s(1200));
  b.t.setMinSpacing(via, via, b.s(1600));

  // --- cross-layer spacings ---------------------------------------------
  // NOTE: poly and diffusion intentionally have no spacing rule between
  // them: their overlap forms the MOS gate.  Keeping unrelated poly off
  // diffusion is handled by the compactor's avoid-overlap shape property.
  b.t.setMinSpacing(pdiff, ndiff, b.s(2800));
  b.t.setMinSpacing(ptie, pdiff, b.s(2400));
  b.t.setMinSpacing(ptie, ndiff, b.s(2400));

  // --- enclosures --------------------------------------------------------
  b.t.setEnclosure(poly, contact, b.s(600));
  b.t.setEnclosure(pdiff, contact, b.s(800));
  b.t.setEnclosure(ndiff, contact, b.s(800));
  b.t.setEnclosure(ptie, contact, b.s(800));
  b.t.setEnclosure(metal1, contact, b.s(600));
  b.t.setEnclosure(metal1, via, b.s(600));
  b.t.setEnclosure(metal2, via, b.s(800));
  b.t.setEnclosure(nwell, pdiff, b.s(1200));

  // --- crossing extensions (transistor formation) ------------------------
  b.t.setExtension(poly, pdiff, b.s(1200));   // gate endcap
  b.t.setExtension(pdiff, poly, b.s(2400));   // source/drain overhang
  b.t.setExtension(poly, ndiff, b.s(1200));
  b.t.setExtension(ndiff, poly, b.s(2400));

  // --- connectivity -------------------------------------------------------
  b.t.addCutConnection(contact, poly, metal1);
  b.t.addCutConnection(contact, pdiff, metal1);
  b.t.addCutConnection(contact, ndiff, metal1);
  b.t.addCutConnection(contact, ptie, metal1);
  b.t.addCutConnection(via, metal1, metal2);

  // --- latch-up ------------------------------------------------------------
  b.t.setLatchUpRadius(b.s(50000));
  b.t.setGuardLayer(guard);
  b.t.setSubstrateTieLayer(ptie);

  if (withBipolar) {
    const LayerId pbase = b.t.addLayer(
        LayerInfo{"pbase", LayerKind::Implant, 20, "#bf9f5f", "hatch", true});
    const LayerId nplus = b.t.addLayer(
        LayerInfo{"nplus", LayerKind::Implant, 21, "#dfbf7f", "cross", true});
    b.t.setMinWidth(pbase, b.s(3000));
    b.t.setMinWidth(nplus, b.s(2000));
    b.t.setMinSpacing(pbase, pbase, b.s(4000));
    b.t.setMinSpacing(nplus, nplus, b.s(2000));
    b.t.setMinSpacing(pbase, pdiff, b.s(2400));
    b.t.setMinSpacing(pbase, ndiff, b.s(2400));
    b.t.setEnclosure(pbase, contact, b.s(800));
    b.t.setEnclosure(nplus, contact, b.s(800));
    b.t.setEnclosure(pbase, nplus, b.s(1000));  // emitter inside base
    b.t.setEnclosure(nwell, pbase, b.s(2000));  // collector well around base
    b.t.setEnclosure(nwell, nplus, b.s(1200));
    b.t.addCutConnection(contact, pbase, metal1);
    b.t.addCutConnection(contact, nplus, metal1);
  }

  return std::move(b.t);
}

}  // namespace

const Technology& bicmos1u() {
  static const Technology t = buildDeck("bicmos1u", 1.0, /*withBipolar=*/true);
  return t;
}

const Technology& cmos2u() {
  static const Technology t = buildDeck("cmos2u", 2.0, /*withBipolar=*/false);
  return t;
}

}  // namespace amg::tech
