#include "capi/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace amg::serve {
namespace {

void writeBytes(util::WireWriter& w, const std::vector<std::uint8_t>& b) {
  w.u32(static_cast<std::uint32_t>(b.size()));
  for (const std::uint8_t v : b) w.u8(v);
}

std::vector<std::uint8_t> readBytes(util::WireReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<std::uint8_t> b;
  b.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) b.push_back(r.u8());
  return b;
}

}  // namespace

util::Diag frameDiag(std::string message) {
  util::Diag d;
  d.code = "AMG-SRV-001";
  d.message = std::move(message);
  d.hint = "client and server must speak the same protocol version "
           "(docs/SERVER.md)";
  return d;
}

std::vector<std::uint8_t> encodeGenerateRequest(const GenerateRequest& r) {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Generate));
  w.u32(kProtocolVersion);
  w.u32(r.queueTimeoutMs);
  w.u32(static_cast<std::uint32_t>(r.jobs.size()));
  for (const WireJob& j : r.jobs) {
    w.str(j.name);
    w.str(j.scriptPath);
    w.str(j.script);
    w.str(j.entity);
    w.str(j.resultVar);
    w.u32(static_cast<std::uint32_t>(j.params.size()));
    for (const auto& [k, v] : j.params) {
      w.str(k);
      w.str(v);
    }
  }
  return w.take();
}

GenerateRequest decodeGenerateRequest(util::WireReader& r) {
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion)
    throw util::DiagError(frameDiag(
        "protocol version mismatch: client speaks v" +
        std::to_string(version) + ", server speaks v" +
        std::to_string(kProtocolVersion)));
  GenerateRequest out;
  out.queueTimeoutMs = r.u32();
  const std::uint32_t n = r.u32();
  out.jobs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WireJob j;
    j.name = r.str();
    j.scriptPath = r.str();
    j.script = r.str();
    j.entity = r.str();
    j.resultVar = r.str();
    const std::uint32_t np = r.u32();
    j.params.reserve(np);
    for (std::uint32_t p = 0; p < np; ++p) {
      std::string k = r.str();
      std::string v = r.str();
      j.params.emplace_back(std::move(k), std::move(v));
    }
    out.jobs.push_back(std::move(j));
  }
  return out;
}

std::vector<std::uint8_t> encodeGenerateResponse(const GenerateResponse& r) {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Generate));
  w.str(r.errorCode);
  w.str(r.errorMessage);
  w.u64(r.cacheHits);
  w.u64(r.prefixRestoredSteps);
  w.f64(r.wallMs);
  w.u32(static_cast<std::uint32_t>(r.results.size()));
  for (const WireResult& res : r.results) {
    w.str(res.name);
    w.u8(static_cast<std::uint8_t>((res.ok ? 1u : 0u) |
                                   (res.cacheHit ? 2u : 0u) |
                                   (res.rejected ? 4u : 0u)));
    w.u64(res.key);
    w.u64(res.layoutHash);
    w.u64(res.shapeCount);
    w.u64(res.prefixRestored);
    w.f64(res.wallMs);
    w.str(res.diagCode);
    w.str(res.diagMessage);
    w.str(res.diagHint);
    w.str(res.diagFile);
    w.u32(res.diagLine);
    w.u32(res.diagCol);
    writeBytes(w, res.layout);
  }
  return w.take();
}

GenerateResponse decodeGenerateResponse(util::WireReader& r) {
  GenerateResponse out;
  out.errorCode = r.str();
  out.errorMessage = r.str();
  out.cacheHits = r.u64();
  out.prefixRestoredSteps = r.u64();
  out.wallMs = r.f64();
  const std::uint32_t n = r.u32();
  out.results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WireResult res;
    res.name = r.str();
    const std::uint8_t flags = r.u8();
    res.ok = (flags & 1u) != 0;
    res.cacheHit = (flags & 2u) != 0;
    res.rejected = (flags & 4u) != 0;
    res.key = r.u64();
    res.layoutHash = r.u64();
    res.shapeCount = r.u64();
    res.prefixRestored = r.u64();
    res.wallMs = r.f64();
    res.diagCode = r.str();
    res.diagMessage = r.str();
    res.diagHint = r.str();
    res.diagFile = r.str();
    res.diagLine = r.u32();
    res.diagCol = r.u32();
    res.layout = readBytes(r);
    out.results.push_back(std::move(res));
  }
  return out;
}

std::vector<std::uint8_t> encodePing() {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Ping));
  return w.take();
}

std::vector<std::uint8_t> encodeStatsRequest() {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Stats));
  return w.take();
}

std::vector<std::uint8_t> encodeStatsResponse(const StatsResponse& r) {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Stats));
  w.str(r.version);
  w.u64(r.requestsServed);
  w.u64(r.jobsServed);
  w.u64(r.busyRejected);
  w.u64(r.timedOut);
  w.u64(r.cacheHits);
  w.u64(r.cacheEntries);
  w.u64(r.cacheBytes);
  w.u64(r.prefixEntries);
  w.u64(r.prefixBytes);
  w.u8(r.draining ? 1 : 0);
  return w.take();
}

StatsResponse decodeStatsResponse(util::WireReader& r) {
  StatsResponse out;
  out.version = r.str();
  out.requestsServed = r.u64();
  out.jobsServed = r.u64();
  out.busyRejected = r.u64();
  out.timedOut = r.u64();
  out.cacheHits = r.u64();
  out.cacheEntries = r.u64();
  out.cacheBytes = r.u64();
  out.prefixEntries = r.u64();
  out.prefixBytes = r.u64();
  out.draining = r.u8() != 0;
  return out;
}

std::vector<std::uint8_t> encodeShutdown() {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::Shutdown));
  return w.take();
}

void sendFrame(int fd, const std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    prefix[i] = static_cast<std::uint8_t>((n >> (8 * i)) & 0xFF);
  struct Span {
    const std::uint8_t* p;
    std::size_t n;
  };
  const Span spans[2] = {{prefix, 4}, {payload.data(), payload.size()}};
  for (const Span& s : spans) {
    std::size_t off = 0;
    while (off < s.n) {
      const ssize_t w = ::send(fd, s.p + off, s.n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        throw util::DiagError(
            frameDiag(std::string("send failed: ") + std::strerror(errno)));
      }
      off += static_cast<std::size_t>(w);
    }
  }
}

std::optional<std::vector<std::uint8_t>> recvFrame(int fd) {
  auto readAll = [fd](std::uint8_t* p, std::size_t n, bool eofOk)
      -> std::optional<std::size_t> {
    std::size_t off = 0;
    while (off < n) {
      const ssize_t r = ::recv(fd, p + off, n - off, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw util::DiagError(
            frameDiag(std::string("recv failed: ") + std::strerror(errno)));
      }
      if (r == 0) {
        if (off == 0 && eofOk) return std::nullopt;  // clean boundary EOF
        throw util::DiagError(frameDiag("connection closed mid-frame"));
      }
      off += static_cast<std::size_t>(r);
    }
    return off;
  };
  std::uint8_t prefix[4];
  if (!readAll(prefix, 4, /*eofOk=*/true)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i)
    n |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (n > kMaxFrameBytes)
    throw util::DiagError(frameDiag("frame length " + std::to_string(n) +
                                    " exceeds the " +
                                    std::to_string(kMaxFrameBytes) +
                                    "-byte ceiling"));
  std::vector<std::uint8_t> payload(n);
  if (n > 0) readAll(payload.data(), n, /*eofOk=*/false);
  return payload;
}

}  // namespace amg::serve
