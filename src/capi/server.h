// amg_serve's engine room: a resident generation server over a unix
// domain socket, built as a library so the integration test and
// bench_serve can run it in-process (examples/amg_serve.cpp is a thin
// flag-parsing shell around this class).
//
// Threading model.  One acceptor thread owns the listening socket and
// spawns a thread per connection; connection threads decode frames and
// *enqueue* generation work.  A single dispatcher thread drains the
// queue, coalescing everything pending into one amg_generate_batch call —
// the batch engine's worker pool (util/thread_pool.h is a one-controller
// design) provides the parallelism, the dispatcher provides the single
// controller.  Caches stay resident in the engine handle across requests;
// that residency is the entire point of the daemon (docs/SERVER.md).
//
// Admission control.  A request is rejected up front with AMG-SRV-002
// when the queue already holds maxQueuedJobs jobs, with AMG-SRV-003 when
// it waited longer than its queue deadline, and with AMG-SRV-004 once
// drain() began.  Running batches are never interrupted.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "capi/protocol.h"

struct amg_engine;  // include/amgen.h opaque handle

namespace amg::serve {

struct ServerConfig {
  std::string socketPath;
  std::string tech;           ///< builtin name or tech-file path ("" = default)
  std::size_t threads = 0;    ///< engine worker count; 0 = hardware
  int interp = -1;            ///< -1 default, 0 tree, 1 VM
  bool cache = true;
  bool prefixCache = true;
  std::string cacheDir;       ///< optional disk tier for the layout cache
  /// Admission: max jobs queued (not yet dispatched) before AMG-SRV-002.
  std::size_t maxQueuedJobs = 1024;
  /// Default queue deadline applied when a request does not set its own.
  std::uint32_t defaultQueueTimeoutMs = 30000;
  /// Record every served job to this AMGT trace (--record); "" = off.
  std::string recordPath;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and start the acceptor + dispatcher threads.
  /// Throws util::DiagError (AMG-SRV-005 on bind failure, engine codes on
  /// engine construction failure).
  void start();

  /// Begin graceful drain: stop accepting connections, reject newly
  /// queued work with AMG-SRV-004, finish everything already queued,
  /// then return.  Idempotent; also invoked by a SHUTDOWN frame.
  void drain();

  /// Block until drain() completes (amg_serve's main thread parks here).
  void wait();

  bool draining() const { return draining_.load(); }
  const ServerConfig& config() const { return cfg_; }
  StatsResponse statsSnapshot();

 private:
  struct Pending;

  void acceptLoop();
  void dispatchLoop();
  void serveConnection(int fd);
  GenerateResponse handleGenerate(GenerateRequest req);

  ServerConfig cfg_;
  amg_engine* engine_ = nullptr;
  int listenFd_ = -1;
  /// Wakes the acceptor's poll() from drain() without a race (self-pipe).
  int wakePipe_[2] = {-1, -1};

  std::mutex mu_;
  std::condition_variable queueCv_;
  std::vector<std::shared_ptr<Pending>> queue_;
  std::size_t queuedJobs_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::thread acceptor_;
  std::thread dispatcher_;
  std::mutex connMu_;
  std::vector<std::thread> connections_;
  std::vector<int> connFds_;  ///< open connection fds, for drain shutdown()

  std::mutex statsMu_;
  std::uint64_t requestsServed_ = 0;
  std::uint64_t jobsServed_ = 0;
  std::uint64_t busyRejected_ = 0;
  std::uint64_t timedOut_ = 0;
};

}  // namespace amg::serve
