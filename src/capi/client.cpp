#include "capi/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace amg::serve {
namespace {

util::Diag connDiag(std::string message) {
  util::Diag d;
  d.code = "AMG-SRV-005";
  d.message = std::move(message);
  d.hint = "is amg_serve running on that socket? (docs/SERVER.md)";
  return d;
}

}  // namespace

Client::Client(const std::string& socketPath) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw util::DiagError(
        connDiag(std::string("socket: ") + std::strerror(errno)));
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof addr.sun_path) {
    ::close(fd_);
    fd_ = -1;
    throw util::DiagError(connDiag("socket path too long: " + socketPath));
  }
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw util::DiagError(connDiag("cannot connect to '" + socketPath +
                                   "': " + std::strerror(err)));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> Client::roundTrip(
    const std::vector<std::uint8_t>& frame, MsgType expect) {
  sendFrame(fd_, frame);
  auto payload = recvFrame(fd_);
  if (!payload)
    throw util::DiagError(connDiag("server closed the connection"));
  if (payload->empty() ||
      static_cast<MsgType>((*payload)[0]) != expect)
    throw util::DiagError(frameDiag("unexpected response message type"));
  return std::move(*payload);
}

GenerateResponse Client::generate(const GenerateRequest& req) {
  const auto payload =
      roundTrip(encodeGenerateRequest(req), MsgType::Generate);
  util::WireReader r(payload, frameDiag("truncated response frame"));
  r.u8();  // type, already checked
  return decodeGenerateResponse(r);
}

void Client::ping() { roundTrip(encodePing(), MsgType::Ping); }

StatsResponse Client::stats() {
  const auto payload = roundTrip(encodeStatsRequest(), MsgType::Stats);
  util::WireReader r(payload, frameDiag("truncated response frame"));
  r.u8();
  return decodeStatsResponse(r);
}

void Client::shutdown() { roundTrip(encodeShutdown(), MsgType::Ping); }

}  // namespace amg::serve
