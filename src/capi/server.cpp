#include "capi/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>

#include "amgen.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "util/version.h"

namespace amg::serve {
namespace {

using Clock = std::chrono::steady_clock;

util::Diag srvDiag(const char* code, std::string message, std::string hint) {
  util::Diag d;
  d.code = code;
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

GenerateResponse rejectAll(const char* code, std::string message) {
  GenerateResponse resp;
  resp.errorCode = code;
  resp.errorMessage = std::move(message);
  return resp;
}

}  // namespace

/// One queued GENERATE frame: its jobs, its deadline, and the slot the
/// dispatcher fulfills for the connection thread parked on it.
struct Server::Pending {
  GenerateRequest req;
  Clock::time_point deadline;
  std::promise<GenerateResponse> done;
};

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {}

Server::~Server() {
  drain();
  if (engine_) amg_engine_destroy(engine_);
}

void Server::start() {
  // Engine first: a bad tech spec should fail before the socket exists.
  amg_config cfg;
  amg_config_init(&cfg);
  cfg.threads = cfg_.threads;
  cfg.interp = cfg_.interp;
  cfg.use_cache = cfg_.cache ? 1 : 0;
  cfg.prefix_cache = cfg_.prefixCache ? 1 : 0;
  cfg.cache_dir = cfg_.cacheDir.empty() ? nullptr : cfg_.cacheDir.c_str();
  engine_ = amg_engine_create(cfg_.tech.c_str(), &cfg);
  if (!engine_) {
    amg_diag d;
    if (amg_last_error(&d))
      throw util::DiagError(srvDiag(d.code, d.message, d.hint));
    throw util::DiagError(
        srvDiag("AMG-SRV-005", "engine construction failed", ""));
  }
  if (!cfg_.recordPath.empty() &&
      amg_record_start(engine_, cfg_.recordPath.c_str(), "amg_serve") !=
          AMG_OK) {
    amg_diag d;
    amg_last_error(&d);
    throw util::DiagError(srvDiag(d.code, d.message, d.hint));
  }

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0)
    throw util::DiagError(srvDiag(
        "AMG-SRV-005", std::string("socket: ") + std::strerror(errno), ""));
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (cfg_.socketPath.size() >= sizeof addr.sun_path)
    throw util::DiagError(srvDiag(
        "AMG-SRV-005",
        "socket path too long: " + cfg_.socketPath,
        "unix socket paths are limited to ~107 bytes; use a /tmp path"));
  std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(cfg_.socketPath.c_str());  // stale socket from a dead server
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listenFd_, 64) < 0)
    throw util::DiagError(srvDiag(
        "AMG-SRV-005",
        "cannot bind '" + cfg_.socketPath + "': " + std::strerror(errno),
        "is another amg_serve already listening there?"));
  if (::pipe(wakePipe_) < 0)
    throw util::DiagError(srvDiag(
        "AMG-SRV-005", std::string("pipe: ") + std::strerror(errno), ""));

  obs::flight::mark("serve.start", cfg_.socketPath.c_str());
  acceptor_ = std::thread([this] { acceptLoop(); });
  dispatcher_ = std::thread([this] { dispatchLoop(); });
}

void Server::acceptLoop() {
  for (;;) {
    pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakePipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || draining_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    OBS_COUNT("serve.connections");
    std::lock_guard<std::mutex> lock(connMu_);
    if (draining_.load()) {  // drain won the race: refuse late arrivals
      ::close(fd);
      break;
    }
    connFds_.push_back(fd);
    connections_.emplace_back([this, fd] { serveConnection(fd); });
  }
}

void Server::serveConnection(int fd) {
  try {
    while (auto payload = recvFrame(fd)) {
      util::WireReader r(*payload, frameDiag("truncated request frame"));
      const auto type = static_cast<MsgType>(r.u8());
      switch (type) {
        case MsgType::Generate: {
          GenerateResponse resp;
          try {
            resp = handleGenerate(decodeGenerateRequest(r));
          } catch (const util::DiagError& e) {
            resp = rejectAll(e.diag().code.c_str(), e.diag().message);
          }
          sendFrame(fd, encodeGenerateResponse(resp));
          break;
        }
        case MsgType::Ping:
          sendFrame(fd, encodePing());
          break;
        case MsgType::Stats:
          sendFrame(fd, encodeStatsResponse(statsSnapshot()));
          break;
        case MsgType::Shutdown: {
          sendFrame(fd, encodePing());  // ack before the drain blocks us
          // drain() joins connection threads, so it must not run on one:
          // hand it to a detached helper and keep reading until EOF.
          std::thread([this] { drain(); }).detach();
          break;
        }
        default:
          throw util::DiagError(frameDiag(
              "unknown message type " +
              std::to_string(static_cast<unsigned>(type))));
      }
    }
  } catch (const std::exception&) {
    // Torn frame or dead peer: drop the connection; the server survives.
  }
  ::close(fd);
}

GenerateResponse Server::handleGenerate(GenerateRequest req) {
  OBS_COUNT("serve.requests");
  obs::Span span("serve.request");
  span.arg("jobs", static_cast<std::uint64_t>(req.jobs.size()));
  const std::uint32_t timeoutMs =
      req.queueTimeoutMs ? req.queueTimeoutMs : cfg_.defaultQueueTimeoutMs;

  auto pending = std::make_shared<Pending>();
  pending->deadline = Clock::now() + std::chrono::milliseconds(timeoutMs);
  pending->req = std::move(req);
  std::future<GenerateResponse> done = pending->done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.load()) {
      return rejectAll("AMG-SRV-004", "server is draining; resubmit later");
    }
    if (queuedJobs_ + pending->req.jobs.size() > cfg_.maxQueuedJobs) {
      OBS_COUNT("serve.busy");
      std::lock_guard<std::mutex> slock(statsMu_);
      ++busyRejected_;
      return rejectAll(
          "AMG-SRV-002",
          "server at capacity (" + std::to_string(queuedJobs_) +
              " jobs queued, limit " + std::to_string(cfg_.maxQueuedJobs) +
              ")");
    }
    queuedJobs_ += pending->req.jobs.size();
    queue_.push_back(pending);
  }
  queueCv_.notify_one();
  GenerateResponse resp = done.get();
  {
    std::lock_guard<std::mutex> lock(statsMu_);
    if (resp.errorCode.empty()) {
      ++requestsServed_;
      jobsServed_ += resp.results.size();
    } else if (resp.errorCode == "AMG-SRV-003") {
      ++timedOut_;
    }
  }
  return resp;
}

void Server::dispatchLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queueCv_.wait(lock, [this] {
        return !queue_.empty() || stopped_.load() ||
               (draining_.load() && queue_.empty());
      });
      if (queue_.empty() && (stopped_.load() || draining_.load())) return;
      batch.swap(queue_);
      for (const auto& p : batch) queuedJobs_ -= p->req.jobs.size();
    }

    // Expired-in-queue requests answer immediately with AMG-SRV-003.
    const Clock::time_point now = Clock::now();
    std::vector<std::shared_ptr<Pending>> live;
    for (auto& p : batch) {
      if (now > p->deadline) {
        OBS_COUNT("serve.timeouts");
        p->done.set_value(rejectAll(
            "AMG-SRV-003", "request timed out waiting in the queue"));
      } else {
        live.push_back(std::move(p));
      }
    }
    if (live.empty()) continue;

    // Coalesce every live request into one batch: the engine's worker
    // pool fans the jobs out, and sweep siblings from different clients
    // share prefix-cache chains within the run.
    std::vector<amg_request> reqs;
    std::vector<std::vector<amg_param>> paramStore;
    std::size_t total = 0;
    for (const auto& p : live) total += p->req.jobs.size();
    reqs.reserve(total);
    paramStore.reserve(total);
    OBS_HIST("serve.batch.jobs", static_cast<std::uint64_t>(total));
    for (const auto& p : live) {
      for (const WireJob& j : p->req.jobs) {
        paramStore.emplace_back();
        std::vector<amg_param>& ps = paramStore.back();
        ps.reserve(j.params.size());
        for (const auto& [k, v] : j.params)
          ps.push_back(amg_param{k.c_str(), v.c_str()});
        amg_request r;
        amg_request_init(&r);
        r.name = j.name.c_str();
        r.script = j.script.c_str();
        r.script_path = j.scriptPath.empty() ? nullptr : j.scriptPath.c_str();
        r.entity = j.entity.empty() ? nullptr : j.entity.c_str();
        r.result_var = j.resultVar.empty() ? nullptr : j.resultVar.c_str();
        r.params = ps.empty() ? nullptr : ps.data();
        r.param_count = ps.size();
        reqs.push_back(r);
      }
    }

    obs::Span span("serve.dispatch");
    span.arg("jobs", static_cast<std::uint64_t>(total));
    amg_batch* out = nullptr;
    const amg_status st =
        amg_generate_batch(engine_, reqs.data(), reqs.size(), &out);
    if (st != AMG_OK || !out) {
      amg_diag d;
      const bool have = amg_last_error(&d) != 0;
      obs::flight::mark("serve.dispatch.error",
                        have ? d.message : "batch failed");
      for (const auto& p : live)
        p->done.set_value(rejectAll(have ? d.code : "AMG-SRV-001",
                                    have ? d.message : "batch failed"));
      continue;
    }

    amg_batch_info info;
    amg_batch_info_get(out, &info);
    std::size_t idx = 0;
    for (const auto& p : live) {
      GenerateResponse resp;
      resp.wallMs = info.wall_ms;
      for (std::size_t j = 0; j < p->req.jobs.size(); ++j, ++idx) {
        amg_result* res = amg_batch_result(out, idx);
        WireResult wr;
        wr.name = amg_result_name(res);
        wr.ok = amg_result_ok(res) != 0;
        wr.cacheHit = amg_result_cache_hit(res) != 0;
        wr.rejected = amg_result_rejected(res) != 0;
        wr.key = amg_result_key(res);
        wr.layoutHash = amg_result_layout_hash(res);
        wr.shapeCount = amg_result_shape_count(res);
        wr.prefixRestored = amg_result_prefix_restored(res);
        wr.wallMs = amg_result_wall_ms(res);
        if (wr.cacheHit) resp.cacheHits++;
        resp.prefixRestoredSteps += wr.prefixRestored;
        if (wr.ok) {
          const std::uint8_t* data = nullptr;
          std::size_t size = 0;
          if (amg_result_layout_data(res, &data, &size) == AMG_OK)
            wr.layout.assign(data, data + size);
        } else {
          amg_diag d;
          if (amg_result_diag(res, &d)) {
            wr.diagCode = d.code;
            wr.diagMessage = d.message;
            wr.diagHint = d.hint;
            wr.diagFile = d.file;
            wr.diagLine = static_cast<std::uint32_t>(d.line);
            wr.diagCol = static_cast<std::uint32_t>(d.col);
          }
        }
        resp.results.push_back(std::move(wr));
      }
      p->done.set_value(std::move(resp));
    }
    amg_batch_destroy(out);
  }
}

void Server::drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    wait();
    return;
  }
  obs::flight::mark("serve.drain");
  // Wake the acceptor and close the front door.
  if (wakePipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wakePipe_[1], &b, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(cfg_.socketPath.c_str());
  }
  // Unblock connection reads; their queued work still completes because
  // the dispatcher drains the queue before exiting.
  {
    std::lock_guard<std::mutex> lock(connMu_);
    for (const int fd : connFds_) ::shutdown(fd, SHUT_RD);
  }
  queueCv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(connMu_);
    for (std::thread& t : connections_) t.join();
    connections_.clear();
    connFds_.clear();
  }
  if (wakePipe_[0] >= 0) ::close(wakePipe_[0]);
  if (wakePipe_[1] >= 0) ::close(wakePipe_[1]);
  wakePipe_[0] = wakePipe_[1] = -1;
  if (engine_ && amg_record_active(engine_)) {
    std::uint64_t n = 0;
    amg_record_stop(engine_, &n);
    obs::flight::mark("serve.record.closed");
  }
  obs::flight::mark("serve.stopped");
  // Last member access: wait() (and thus ~Server) may run the moment this
  // store lands, and a SHUTDOWN frame runs drain() on a detached thread.
  stopped_.store(true);
}

void Server::wait() {
  while (!stopped_.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

StatsResponse Server::statsSnapshot() {
  StatsResponse s;
  s.version = util::kVersionString;
  s.draining = draining_.load();
  {
    std::lock_guard<std::mutex> lock(statsMu_);
    s.requestsServed = requestsServed_;
    s.jobsServed = jobsServed_;
    s.busyRejected = busyRejected_;
    s.timedOut = timedOut_;
  }
  amg_cache_stats cs;
  if (engine_ && amg_engine_cache_stats(engine_, &cs) == AMG_OK) {
    s.cacheHits = cs.hits + cs.disk_hits;
    s.cacheEntries = cs.entries;
    s.cacheBytes = cs.bytes;
  }
  if (engine_ && amg_engine_prefix_cache_stats(engine_, &cs)) {
    s.prefixEntries = cs.entries;
    s.prefixBytes = cs.bytes;
  }
  return s;
}

}  // namespace amg::serve
