// The libamgen C ABI (include/amgen.h) over the C++ engine.
//
// Design rules at this boundary:
//  * No exception ever crosses it: every entry point catches, stashes the
//    structured diagnostic in a thread-local last-error slot, and returns
//    a status (or NULL handle).
//  * Handles are plain structs in the global namespace (their tags are the
//    C opaque types); all engine state they reference is owned by them.
//  * The engine handle serializes generate calls behind one mutex — the
//    underlying gen::BatchEngine is a one-controller-many-workers design
//    (util/thread_pool.h), so concurrent embedder threads queue here and
//    the worker pool parallelizes *within* a batch.
//  * AMGT recording is done by this layer (gen::recordOf per job, in
//    submission order, after each run) rather than through
//    gen::EngineConfig::recorder, so amg_record_start()/_stop() can toggle
//    recording on a live engine without rebuilding it — rebuilding would
//    drop the resident caches, the whole point of a resident engine.
//
// docs/EMBEDDING.md is the embedder-facing contract; this file is the
// only translation unit that needs to know both sides.
#include "amgen.h"

#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compact/prefix.h"
#include "gen/engine.h"
#include "gen/fingerprint.h"
#include "gen/replay.h"
#include "io/cif.h"
#include "io/gds.h"
#include "io/layout.h"
#include "io/svg.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "tech/builtin.h"
#include "tech/techfile.h"
#include "util/diag.h"
#include "util/thread_annotations.h"
#include "util/version.h"

namespace {

using namespace amg;

// --- thread-local last error ----------------------------------------------

thread_local util::Diag tlsError;
thread_local bool tlsHasError = false;

void setError(util::Diag d) {
  tlsError = std::move(d);
  tlsHasError = true;
}

void setError(const char* code, std::string message, std::string hint = "") {
  util::Diag d;
  d.code = code;
  d.message = std::move(message);
  d.hint = std::move(hint);
  setError(std::move(d));
}

/// Map a caught exception into the last-error slot; returns the status the
/// entry point should surface.
amg_status errorFrom(const std::exception& e, amg_status fallback) {
  if (const auto* de = dynamic_cast<const util::DiagError*>(&e)) {
    setError(de->diag());
    return fallback;
  }
  if (const auto* dr = dynamic_cast<const util::DesignRuleDiag*>(&e)) {
    setError(dr->diag());
    return fallback;
  }
  setError("AMG-CAPI-001", e.what(),
           "unstructured engine failure at the C boundary");
  return fallback == AMG_OK ? AMG_E_INTERNAL : fallback;
}

amg_status invalid(const char* what) {
  setError("AMG-CAPI-002", std::string("invalid argument: ") + what,
           "see docs/EMBEDDING.md for the call contract");
  return AMG_E_INVALID;
}

void fillDiag(const util::Diag& d, amg_diag* out) {
  out->code = d.code.c_str();
  out->message = d.message.c_str();
  out->hint = d.hint.c_str();
  out->file = d.loc.file.c_str();
  out->line = d.loc.line;
  out->col = d.loc.col;
}

// --- request/config translation -------------------------------------------

std::string orEmpty(const char* s) { return s ? std::string(s) : std::string(); }

gen::EngineConfig configOf(const amg_config& c) {
  gen::EngineConfig cfg;
  cfg.threads = c.threads;
  if (c.interp == 0)
    cfg.interp = lang::Engine::Tree;
  else if (c.interp == 1)
    cfg.interp = lang::Engine::Vm;
  cfg.useCache = c.use_cache != 0;
  cfg.cache.maxBytes = static_cast<std::size_t>(c.cache_max_bytes);
  cfg.cache.diskDir = orEmpty(c.cache_dir);
  cfg.prefixCache = c.prefix_cache != 0;
  cfg.prefix.maxBytes = static_cast<std::size_t>(c.prefix_cache_max_bytes);
  cfg.prefix.diskDir = orEmpty(c.prefix_cache_dir);
  cfg.preflight = c.preflight != 0;
  cfg.preflightWerror = c.preflight_werror != 0;
  return cfg;
}

bool jobOf(const amg_request& req, gen::Job& job, std::string& badField) {
  if (!req.script) {
    badField = "amg_request.script is NULL";
    return false;
  }
  if (req.param_count > 0 && !req.params) {
    badField = "amg_request.params is NULL with param_count > 0";
    return false;
  }
  job.name = req.name && *req.name ? req.name : "request";
  job.script = req.script;
  job.scriptPath = req.script_path ? req.script_path : "<embedded>";
  job.entity = orEmpty(req.entity);
  if (req.result_var && *req.result_var) job.resultVar = req.result_var;
  job.params.reserve(req.param_count);
  for (std::size_t i = 0; i < req.param_count; ++i) {
    if (!req.params[i].key || !req.params[i].value) {
      badField = "amg_param key/value is NULL";
      return false;
    }
    job.params.emplace_back(req.params[i].key, req.params[i].value);
  }
  return true;
}

}  // namespace

// --- handle definitions (global namespace: these ARE the C opaque types) --

struct amg_result {
  amg::gen::JobResult r;
  std::vector<std::uint8_t> amgl;  ///< lazy serializeLayout() cache
};

struct amg_batch {
  std::vector<amg_result> results;  ///< sized once; pointers stay stable
  amg_batch_info info = {};
};

struct amg_engine {
  /// Serializes run()s — one controller for the pool.  mutable so the
  /// const stats readers can lock too (clang -Wthread-safety enforces
  /// every `engine`/`recorder` access below).
  mutable amg::util::Mutex mu;
  std::string techSpec;
  std::optional<amg::tech::Technology> ownedTech;  ///< file-loaded decks
  const amg::tech::Technology* tech = nullptr;
  amg::gen::EngineConfig cfg;  ///< recorder deliberately never set
  std::unique_ptr<amg::gen::BatchEngine> engine AMG_GUARDED_BY(mu);
  std::unique_ptr<amg::obs::Recorder> recorder
      AMG_GUARDED_BY(mu);  ///< AMGT; see file comment
};

namespace {

/// Shared by amg_generate / amg_generate_batch: run under the engine lock,
/// append to the AMGT recorder when active.
gen::BatchReport runLocked(amg_engine* e, const std::vector<gen::Job>& jobs) {
  util::MutexLock lock(e->mu);
  gen::BatchReport report = e->engine->run(jobs);
  if (e->recorder)
    for (std::size_t i = 0; i < jobs.size(); ++i)
      e->recorder->append(gen::recordOf(jobs[i], report.jobs[i]));
  return report;
}

amg_result resultOf(gen::JobResult&& r) {
  amg_result out;
  out.r = std::move(r);
  return out;
}

void fillInfo(const gen::BatchReport& rep, amg_batch_info* out) {
  out->jobs = rep.jobs.size();
  out->succeeded = rep.succeeded;
  out->failed = rep.failed;
  out->rejected = rep.rejected;
  out->cache_hits = rep.cacheHits;
  out->prefix_restored_steps = rep.prefixRestoredSteps;
  out->wall_ms = rep.wallMs;
  out->preflight_ms = rep.preflightMs;
}

}  // namespace

extern "C" {

// --- errors ---------------------------------------------------------------

int amg_last_error(amg_diag* out) {
  if (!tlsHasError) return 0;
  if (out) fillDiag(tlsError, out);
  return 1;
}

void amg_clear_last_error(void) { tlsHasError = false; }

// --- version identity -----------------------------------------------------

const char* amg_version(void) { return util::kVersionString; }

uint32_t amg_api_version(void) { return util::kApiVersion; }

void amg_version_info_get(amg_version_info* out) {
  if (!out) return;
  out->api = util::kApiVersion;
  out->layout_format = util::kLayoutFormatVersion;
  out->session_format = util::kSessionFormatVersion;
  out->trace_format = util::kTraceFormatVersion;
  out->prefix_format = util::kPrefixFormatVersion;
  out->engine = util::kEngineVersion;
  out->bytecode = util::kBytecodeVersion;
}

// --- engine lifecycle -----------------------------------------------------

void amg_config_init(amg_config* cfg) {
  if (!cfg) return;
  const amg::gen::EngineConfig d;
  std::memset(cfg, 0, sizeof *cfg);
  cfg->threads = 0;
  cfg->interp = d.interp == amg::lang::Engine::Vm ? 1 : 0;
  cfg->use_cache = d.useCache ? 1 : 0;
  cfg->cache_max_bytes = d.cache.maxBytes;
  cfg->prefix_cache = d.prefixCache ? 1 : 0;
  cfg->prefix_cache_max_bytes = d.prefix.maxBytes;
  cfg->preflight = d.preflight ? 1 : 0;
  cfg->preflight_werror = d.preflightWerror ? 1 : 0;
}

amg_engine* amg_engine_create(const char* tech_spec, const amg_config* cfg) {
  try {
    auto e = std::make_unique<amg_engine>();
    e->techSpec = orEmpty(tech_spec);
    if (e->techSpec.empty() || e->techSpec == "bicmos1u") {
      e->tech = &tech::bicmos1u();
    } else if (e->techSpec == "cmos2u") {
      e->tech = &tech::cmos2u();
    } else {
      e->ownedTech = tech::loadTechFile(e->techSpec);
      e->tech = &*e->ownedTech;
    }
    if (cfg) {
      e->cfg = configOf(*cfg);
    }
    {
      // Not yet shared, but the annotated lock keeps the analysis exact.
      util::MutexLock lock(e->mu);
      e->engine = std::make_unique<gen::BatchEngine>(*e->tech, e->cfg);
    }
    return e.release();
  } catch (const std::exception& ex) {
    errorFrom(ex, AMG_E_TECH);
    return nullptr;
  }
}

void amg_engine_destroy(amg_engine* e) { delete e; }

uint64_t amg_engine_tech_fingerprint(const amg_engine* e) {
  if (!e) return 0;
  try {
    return gen::techFingerprint(*e->tech);
  } catch (const std::exception& ex) {
    errorFrom(ex, AMG_E_INTERNAL);
    return 0;
  }
}

// --- generation -----------------------------------------------------------

void amg_request_init(amg_request* req) {
  if (req) std::memset(req, 0, sizeof *req);
}

amg_status amg_generate(amg_engine* e, const amg_request* req,
                        amg_result** out) {
  if (out) *out = nullptr;
  if (!e || !req || !out) return invalid("amg_generate(engine, req, out)");
  try {
    std::vector<gen::Job> jobs(1);
    std::string bad;
    if (!jobOf(*req, jobs[0], bad)) return invalid(bad.c_str());
    gen::BatchReport rep = runLocked(e, jobs);
    *out = new amg_result(resultOf(std::move(rep.jobs[0])));
    return AMG_OK;
  } catch (const std::exception& ex) {
    return errorFrom(ex, AMG_E_INTERNAL);
  }
}

amg_status amg_generate_batch(amg_engine* e, const amg_request* reqs,
                              size_t count, amg_batch** out) {
  if (out) *out = nullptr;
  if (!e || !out || (count > 0 && !reqs))
    return invalid("amg_generate_batch(engine, reqs, count, out)");
  try {
    std::vector<gen::Job> jobs(count);
    std::string bad;
    for (std::size_t i = 0; i < count; ++i)
      if (!jobOf(reqs[i], jobs[i], bad)) return invalid(bad.c_str());
    gen::BatchReport rep = runLocked(e, jobs);
    auto b = std::make_unique<amg_batch>();
    b->results.reserve(rep.jobs.size());
    for (gen::JobResult& r : rep.jobs)
      b->results.push_back(resultOf(std::move(r)));
    fillInfo(rep, &b->info);
    *out = b.release();
    return AMG_OK;
  } catch (const std::exception& ex) {
    return errorFrom(ex, AMG_E_INTERNAL);
  }
}

// --- batch access ---------------------------------------------------------

size_t amg_batch_size(const amg_batch* b) { return b ? b->results.size() : 0; }

amg_result* amg_batch_result(amg_batch* b, size_t index) {
  if (!b || index >= b->results.size()) return nullptr;
  return &b->results[index];
}

void amg_batch_info_get(const amg_batch* b, amg_batch_info* out) {
  if (!b || !out) return;
  *out = b->info;
}

void amg_batch_destroy(amg_batch* b) { delete b; }

// --- result access & extraction -------------------------------------------

int amg_result_ok(const amg_result* r) { return r && r->r.ok ? 1 : 0; }

int amg_result_cache_hit(const amg_result* r) {
  return r && r->r.cacheHit ? 1 : 0;
}

int amg_result_rejected(const amg_result* r) {
  return r && r->r.rejected ? 1 : 0;
}

const char* amg_result_name(const amg_result* r) {
  return r ? r->r.name.c_str() : "";
}

uint64_t amg_result_key(const amg_result* r) { return r ? r->r.key : 0; }

uint64_t amg_result_layout_hash(const amg_result* r) {
  return r ? r->r.layoutHash : 0;
}

uint64_t amg_result_shape_count(const amg_result* r) {
  return r && r->r.layout
             ? static_cast<uint64_t>(r->r.layout->shapeCount())
             : 0;
}

double amg_result_wall_ms(const amg_result* r) { return r ? r->r.wallMs : 0; }

uint64_t amg_result_prefix_restored(const amg_result* r) {
  return r ? r->r.prefixRestored : 0;
}

int amg_result_diag(const amg_result* r, amg_diag* out) {
  if (!r || !r->r.diag) return 0;
  if (out) fillDiag(*r->r.diag, out);
  return 1;
}

amg_status amg_result_layout_data(amg_result* r, const uint8_t** data,
                                  size_t* size) {
  if (data) *data = nullptr;
  if (size) *size = 0;
  if (!r || !data || !size)
    return invalid("amg_result_layout_data(result, data, size)");
  if (!r->r.ok || !r->r.layout) {
    setError("AMG-CAPI-003", "request failed; no layout to extract",
             "check amg_result_ok() / amg_result_diag() first");
    return AMG_E_STATE;
  }
  try {
    if (r->amgl.empty()) r->amgl = io::serializeLayout(*r->r.layout);
    *data = r->amgl.data();
    *size = r->amgl.size();
    return AMG_OK;
  } catch (const std::exception& ex) {
    return errorFrom(ex, AMG_E_INTERNAL);
  }
}

amg_status amg_result_export(amg_result* r, amg_export_format format,
                             const char* path) {
  if (!r || !path) return invalid("amg_result_export(result, format, path)");
  if (!r->r.ok || !r->r.layout) {
    setError("AMG-CAPI-003", "request failed; no layout to export",
             "check amg_result_ok() / amg_result_diag() first");
    return AMG_E_STATE;
  }
  try {
    switch (format) {
      case AMG_EXPORT_SVG:
        io::writeSvg(*r->r.layout, path);
        return AMG_OK;
      case AMG_EXPORT_CIF:
        io::writeCif(*r->r.layout, path);
        return AMG_OK;
      case AMG_EXPORT_GDS:
        io::writeGds(*r->r.layout, path);
        return AMG_OK;
      case AMG_EXPORT_AMGL:
        io::writeLayoutFile(*r->r.layout, path);
        return AMG_OK;
    }
    return invalid("unknown amg_export_format");
  } catch (const std::exception& ex) {
    return errorFrom(ex, AMG_E_IO);
  }
}

void amg_result_destroy(amg_result* r) { delete r; }

// --- cache control --------------------------------------------------------

amg_status amg_engine_cache_stats(const amg_engine* e, amg_cache_stats* out) {
  if (!e || !out) return invalid("amg_engine_cache_stats(engine, out)");
  util::MutexLock lock(e->mu);  // amg_engine_clear_caches swaps `engine`
  const gen::LayoutCache& c = e->engine->cache();
  const gen::LayoutCache::Stats s = c.stats();
  out->hits = s.hits;
  out->disk_hits = s.diskHits;
  out->misses = s.misses;
  out->evictions = s.evictions;
  out->puts = s.puts;
  out->entries = c.entryCount();
  out->bytes = c.byteCount();
  return AMG_OK;
}

int amg_engine_prefix_cache_stats(const amg_engine* e, amg_cache_stats* out) {
  if (out) std::memset(out, 0, sizeof *out);
  if (!e || !out) return 0;
  util::MutexLock lock(e->mu);  // amg_engine_clear_caches swaps `engine`
  const compact::PrefixCache* pc = e->engine->prefixCache();
  if (!pc) return 0;
  const compact::PrefixCache::Stats s = pc->stats();
  out->hits = s.hits;
  out->disk_hits = s.diskHits;
  out->misses = s.misses;
  out->evictions = s.evictions;
  out->puts = s.puts;
  out->entries = pc->entryCount();
  out->bytes = pc->byteCount();
  return 1;
}

amg_status amg_engine_clear_caches(amg_engine* e) {
  if (!e) return invalid("amg_engine_clear_caches(engine)");
  try {
    // Rebuilding the BatchEngine drops both resident tiers and their stats
    // while keeping technology, configuration and the AMGT recorder.  The
    // process-wide compiled-chunk cache survives by design
    // (docs/CACHING.md: chunks key on source text alone).
    util::MutexLock lock(e->mu);
    e->engine = std::make_unique<gen::BatchEngine>(*e->tech, e->cfg);
    return AMG_OK;
  } catch (const std::exception& ex) {
    return errorFrom(ex, AMG_E_INTERNAL);
  }
}

// --- observability --------------------------------------------------------

void amg_stats_enable(int on) { obs::enableStats(on != 0); }

amg_status amg_stats_write_json(const char* path) {
  if (!path) return invalid("amg_stats_write_json(path)");
  if (obs::Stats::global().writeJson(path)) return AMG_OK;
  setError("AMG-CAPI-004", std::string("cannot write stats JSON '") + path + "'");
  return AMG_E_IO;
}

void amg_stats_reset(void) { obs::Stats::global().reset(); }

void amg_trace_enable(int on) { obs::enableTrace(on != 0); }

amg_status amg_trace_write(const char* path) {
  if (!path) return invalid("amg_trace_write(path)");
  if (obs::Tracer::global().write(path)) return AMG_OK;
  setError("AMG-CAPI-004", std::string("cannot write trace JSON '") + path + "'");
  return AMG_E_IO;
}

amg_status amg_record_start(amg_engine* e, const char* path, const char* tool) {
  if (!e || !path) return invalid("amg_record_start(engine, path, tool)");
  try {
    util::MutexLock lock(e->mu);
    if (e->recorder) {
      setError("AMG-CAPI-003", "an AMGT recording is already active",
               "amg_record_stop() it first");
      return AMG_E_STATE;
    }
    obs::TraceHeader hdr;
    hdr.tool = tool && *tool ? tool : "libamgen";
    hdr.techSpec = e->techSpec.empty() ? "bicmos1u" : e->techSpec;
    hdr.techFingerprint = gen::techFingerprint(*e->tech);
    hdr.interp = e->cfg.interp == lang::Engine::Vm ? 1 : 0;
    hdr.cacheEnabled = e->cfg.useCache;
    hdr.prefixCacheEnabled =
        e->cfg.prefixCache && compact::prefixCacheEnvEnabled();
    const obs::SpatialEngineConfig& se = obs::spatialEngines();
    hdr.spatialEngines =
        static_cast<std::uint8_t>((se.compactIndexed ? 1u : 0u) |
                                  (se.drcIndexed ? 2u : 0u) |
                                  (se.connectivityIndexed ? 4u : 0u) |
                                  (se.routeIndexed ? 8u : 0u));
    e->recorder = std::make_unique<obs::Recorder>(path, std::move(hdr));
    return AMG_OK;
  } catch (const std::exception& ex) {
    return errorFrom(ex, AMG_E_IO);
  }
}

amg_status amg_record_stop(amg_engine* e, uint64_t* out_count) {
  if (out_count) *out_count = 0;
  if (!e) return invalid("amg_record_stop(engine)");
  util::MutexLock lock(e->mu);
  if (!e->recorder) {
    setError("AMG-CAPI-003", "no AMGT recording is active",
             "amg_record_start() one first");
    return AMG_E_STATE;
  }
  if (out_count) *out_count = e->recorder->recordCount();
  e->recorder.reset();
  return AMG_OK;
}

int amg_record_active(const amg_engine* e) {
  if (!e) return 0;
  util::MutexLock lock(e->mu);
  return e->recorder ? 1 : 0;
}

}  // extern "C"
