// Thin blocking client for the amg_serve wire protocol, shared by
// `batch_runner --connect`, the daemon integration test and bench_serve.
//
// One Client = one connection; requests on it are answered in order.
// Not thread-safe — open one Client per thread (the server multiplexes).
// Every method throws util::DiagError (AMG-SRV-005 for connection
// failures, AMG-SRV-001 for protocol violations).
#pragma once

#include <string>

#include "capi/protocol.h"

namespace amg::serve {

class Client {
 public:
  /// Connect to a listening amg_serve socket.
  explicit Client(const std::string& socketPath);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  GenerateResponse generate(const GenerateRequest& req);
  /// Round-trip liveness probe; throws when the server is unreachable.
  void ping();
  StatsResponse stats();
  /// Ask the server to drain and exit.  Returns after the ack; the
  /// server finishes queued work before releasing the socket.
  void shutdown();

 private:
  std::vector<std::uint8_t> roundTrip(const std::vector<std::uint8_t>& frame,
                                      MsgType expect);
  int fd_ = -1;
};

}  // namespace amg::serve
