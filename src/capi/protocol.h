// The amg_serve wire protocol: length-prefixed frames over a unix domain
// socket (docs/SERVER.md is the normative description).
//
// Framing: every message is a u32 little-endian payload length followed
// by that many payload bytes.  The payload itself is encoded with the
// same util/wire.h primitives as the AMGL/AMGT formats and starts with a
// u8 message type.  One request frame yields exactly one response frame;
// requests on one connection are answered in order.
//
// The protocol is versioned independently of the formats it carries:
// kProtocolVersion is exchanged in every GENERATE request and echoed in
// errors, so a stale client fails with AMG-SRV-001 instead of a decode
// mystery.
//
// Error codes (util/diag.h registry, documented in docs/CLI.md):
//   AMG-SRV-001  malformed or incompatible request frame
//   AMG-SRV-002  server at capacity (admission control rejected)
//   AMG-SRV-003  request timed out in the queue
//   AMG-SRV-004  server is draining (shutdown in progress)
//   AMG-SRV-005  client-side connection failure
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/diag.h"
#include "util/wire.h"

namespace amg::serve {

constexpr std::uint32_t kProtocolVersion = 1;

/// Hard ceiling on a frame payload; a length prefix beyond this is
/// treated as a framing error, not an allocation request.
constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

enum class MsgType : std::uint8_t {
  Generate = 1,  ///< a batch of generation requests → GenerateResponse
  Ping = 2,      ///< liveness probe → PingResponse
  Stats = 3,     ///< server/cache statistics → StatsResponse
  Shutdown = 4,  ///< begin graceful drain → PingResponse (ack)
};

/// One generation request inside a GENERATE frame — mirrors amg_request.
struct WireJob {
  std::string name;
  std::string scriptPath;
  std::string script;
  std::string entity;
  std::string resultVar;
  std::vector<std::pair<std::string, std::string>> params;
};

struct GenerateRequest {
  std::vector<WireJob> jobs;
  /// Milliseconds the client is willing to wait in the admission queue;
  /// 0 = server default.  Running jobs are never killed mid-flight.
  std::uint32_t queueTimeoutMs = 0;
};

/// Per-job outcome inside a GENERATE response — mirrors amg_result
/// accessors plus the serialized layout when requested.
struct WireResult {
  std::string name;
  bool ok = false;
  bool cacheHit = false;
  bool rejected = false;
  std::uint64_t key = 0;
  std::uint64_t layoutHash = 0;
  std::uint64_t shapeCount = 0;
  std::uint64_t prefixRestored = 0;
  double wallMs = 0;
  /// Set when !ok: the structured diagnostic, flattened.
  std::string diagCode;
  std::string diagMessage;
  std::string diagHint;
  std::string diagFile;
  std::uint32_t diagLine = 0;
  std::uint32_t diagCol = 0;
  /// serializeLayout() bytes; empty when the job failed.
  std::vector<std::uint8_t> layout;
};

struct GenerateResponse {
  /// Empty code = accepted and ran; otherwise an AMG-SRV-* rejection that
  /// applies to the whole frame (results is then empty).
  std::string errorCode;
  std::string errorMessage;
  std::vector<WireResult> results;
  std::uint64_t cacheHits = 0;
  std::uint64_t prefixRestoredSteps = 0;
  double wallMs = 0;
};

struct StatsResponse {
  std::string version;          ///< util::kVersionString
  std::uint64_t requestsServed = 0;
  std::uint64_t jobsServed = 0;
  std::uint64_t busyRejected = 0;
  std::uint64_t timedOut = 0;
  std::uint64_t cacheHits = 0;      ///< whole-layout tier, engine lifetime
  std::uint64_t cacheEntries = 0;
  std::uint64_t cacheBytes = 0;
  std::uint64_t prefixEntries = 0;  ///< 0 when the tier is disabled
  std::uint64_t prefixBytes = 0;
  bool draining = false;
};

// --- encoding --------------------------------------------------------------
// encode* produce a full payload (starting with the MsgType byte);
// decode* expect the payload with the type byte already consumed and
// throw util::DiagError AMG-SRV-001 on malformed input.

std::vector<std::uint8_t> encodeGenerateRequest(const GenerateRequest& r);
std::vector<std::uint8_t> encodeGenerateResponse(const GenerateResponse& r);
std::vector<std::uint8_t> encodePing();
std::vector<std::uint8_t> encodeStatsRequest();
std::vector<std::uint8_t> encodeStatsResponse(const StatsResponse& r);
std::vector<std::uint8_t> encodeShutdown();

GenerateRequest decodeGenerateRequest(util::WireReader& r);
GenerateResponse decodeGenerateResponse(util::WireReader& r);
StatsResponse decodeStatsResponse(util::WireReader& r);

/// Diag template for malformed frames (AMG-SRV-001).
util::Diag frameDiag(std::string message);

/// Blocking frame I/O on a connected socket fd.  sendFrame writes the
/// u32 length prefix + payload; recvFrame reads one whole frame, returns
/// nullopt on clean EOF at a frame boundary, and throws util::DiagError
/// AMG-SRV-001 on a torn or oversized frame.
void sendFrame(int fd, const std::vector<std::uint8_t>& payload);
std::optional<std::vector<std::uint8_t>> recvFrame(int fd);

}  // namespace amg::serve
