#include "route/obstacles.h"

#include <algorithm>

#include "obs/obs.h"
#include "tech/rulecache.h"

namespace amg::route {

Obstacles::Obstacles(const db::Module& m)
    : Obstacles(m, obs::spatialEngines().routeIndexed ? Engine::Indexed
                                                      : Engine::BruteForce) {}

Obstacles::Obstacles(const db::Module& m, Engine engine) : m_(&m), engine_(engine) {
  if (engine_ == Engine::Indexed)
    OBS_COUNT("route.engine.indexed");
  else
    OBS_COUNT("route.engine.brute");
  for (db::ShapeId id : m.shapeIds()) {
    ids_.push_back(id);
    if (engine_ == Engine::Indexed)
      idx_.insert(id, m.shape(id).layer, m.shape(id).box);
  }
}

void Obstacles::add(db::ShapeId id) {
  const auto pos = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (pos != ids_.end() && *pos == id) return;
  ids_.insert(pos, id);
  if (engine_ == Engine::Indexed)
    idx_.insert(id, m_->shape(id).layer, m_->shape(id).box);
}

std::optional<db::ShapeId> Obstacles::firstConflict(const db::Shape& s) const {
  const tech::RuleCache& rc = m_->technology().rules();
  if (rc.kind(s.layer) == tech::LayerKind::Marker) return std::nullopt;
  OBS_COUNT("route.obstacles.probes");

  const db::ShapeId* begin = ids_.data();
  const db::ShapeId* end = begin + ids_.size();
  if (engine_ == Engine::Indexed) {
    // Every conflict is within the largest spacing rule of s.layer (the
    // no-rule overlap case needs halo 0, subsumed by any non-negative halo).
    idx_.query(s.box.expanded(rc.maxSpacing(s.layer)), scratch_);
    begin = scratch_.data();
    end = begin + scratch_.size();
  }
  OBS_COUNT_N("route.obstacles.candidates", static_cast<std::uint64_t>(end - begin));

  for (const db::ShapeId* it = begin; it != end; ++it) {
    const db::ShapeId id = *it;
    if (!m_->isAlive(id)) continue;
    const db::Shape& o = m_->shape(id);
    if (rc.kind(o.layer) == tech::LayerKind::Marker) continue;
    if (s.net != db::kNoNet && o.net == s.net) continue;
    if (auto rule = rc.minSpacing(s.layer, o.layer)) {
      if (gapX(s.box, o.box) < *rule && gapY(s.box, o.box) < *rule) {
        OBS_COUNT("route.obstacles.conflicts");
        return id;
      }
    } else if (s.box.overlaps(o.box)) {
      OBS_COUNT("route.obstacles.conflicts");
      return id;
    }
  }
  return std::nullopt;
}

}  // namespace amg::route
