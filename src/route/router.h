// Internal-wiring support (§1: "Several routing routines support the
// internal wiring of the modules").
//
// Module generators wire their devices three ways, all provided here:
//  1. explicit rectilinear wires (straight / L via angle adaptor / Z),
//  2. via stacks to change layers,
//  3. wiring-by-compaction: a strap on the shared potential is compacted
//     onto the structure and merges with it (§2.3, Fig. 5a).
//
// All widths default to the layer minimum; every function tags the created
// geometry with the net so the compactor's same-potential rules and the
// DRC exemptions apply.
#pragma once

#include <optional>
#include <string_view>

#include "compact/compactor.h"
#include "db/module.h"

namespace amg::route {

using db::Module;
using db::NetId;
using db::ShapeId;
using tech::LayerId;

/// A connection endpoint: a position on a layer.
struct Port {
  Point at;
  LayerId layer = 0;
};

/// Port at the centre of an existing shape.
Port portOf(const Module& m, ShapeId id);

/// Straight wire between two points sharing an axis (throws when the points
/// are not axis-aligned).  The wire is widened symmetrically to `width`.
ShapeId wireStraight(Module& m, LayerId layer, Point a, Point b,
                     std::optional<Coord> width = std::nullopt, NetId net = db::kNoNet);

/// L-shaped wire from `a` to `b`: horizontal first when `xFirst`, using the
/// angle-adaptor primitive at the bend.  Returns the two arm shapes.
std::pair<ShapeId, ShapeId> wireL(Module& m, LayerId layer, Point a, Point b,
                                  bool xFirst = true,
                                  std::optional<Coord> width = std::nullopt,
                                  NetId net = db::kNoNet);

/// Z-shaped wire: two parallel arms joined by a perpendicular jog at
/// coordinate `mid` (an x when the arms are vertical, a y when horizontal).
/// `horizontalArms` selects the arm orientation.  Returns the three shapes.
std::vector<ShapeId> wireZ(Module& m, LayerId layer, Point a, Point b, Coord mid,
                           bool horizontalArms,
                           std::optional<Coord> width = std::nullopt,
                           NetId net = db::kNoNet);

/// Via stack at a point: the cut connecting `from` and `to` plus landing
/// pads on both layers, all rule-sized.  Throws when the technology has no
/// cut between the layers.  Returns {pad-from, cut, pad-to}.
std::vector<ShapeId> viaStack(Module& m, Point at, LayerId from, LayerId to,
                              NetId net = db::kNoNet);

/// Wire two existing shapes on conducting layers: straight when aligned,
/// else L-shaped between their centres; inserts via stacks at both ends
/// when the routing layer differs from a shape's layer.  Returns the
/// created shapes.
std::vector<ShapeId> connectShapes(Module& m, ShapeId a, ShapeId b, LayerId onLayer,
                                   std::optional<Coord> width = std::nullopt);

/// Wiring by compaction: build a strap on `layer`/net spanning the net's
/// current geometry across the movement axis and compact it onto the module
/// from direction `dir`; same-potential merging connects everything the
/// strap reaches (the Fig. 5a idiom).  Returns the strap's shape id in `m`.
ShapeId strapByCompaction(Module& m, std::string_view netName, LayerId layer, Dir dir,
                          std::optional<Coord> width = std::nullopt);

/// Wire two named ports: via stacks onto `onLayer` at both ends, straight
/// or L-shaped between them.  Ports carry their own layers and nets.
std::vector<ShapeId> connectPorts(Module& m, const db::PortDef& a,
                                  const db::PortDef& b, LayerId onLayer,
                                  std::optional<Coord> width = std::nullopt);

/// One channel connection: a pin on the channel's top edge at `xTop` and a
/// pin on the bottom edge at `xBottom`, both on `vLayer`, to be joined.
struct ChannelNet {
  std::string net;
  Coord xTop = 0;
  Coord xBottom = 0;
};

/// Classic left-edge channel routing between y = `yBottom` and y = `yTop`
/// ("routing of these blocks" in the paper's three-step flow): horizontal
/// track segments on `hLayer`, verticals on `vLayer`, vias at the bends.
/// Nets are packed onto tracks greedily by their left edge; two nets share
/// a track when their spans do not conflict.  Returns the number of tracks
/// used; throws DesignRuleError when the channel is too small for them.
/// With `verifyClear`, every placed segment is additionally probed against
/// the module's pre-route geometry through a route::Obstacles index and a
/// DesignRuleError names the first foreign shape a segment conflicts with
/// (off by default: the classic flow trusts the caller's channel bounds).
int channelRoute(Module& m, const std::vector<ChannelNet>& nets, Coord yBottom,
                 Coord yTop, LayerId hLayer, LayerId vLayer,
                 std::optional<Coord> width = std::nullopt, bool verifyClear = false);

/// Mirror-symmetric wiring helper: every shape of `half` is added to `m`
/// twice — once as-is, once mirrored about the vertical axis `x` — with the
/// nets renamed through `netMap` (pairs of left-net -> right-net; nets not
/// listed keep their name on both sides).  This is how the centroid
/// differential pair achieves "fully symmetrical wiring [where] every net
/// has identical crossings" (Fig. 10).
void addMirrored(Module& m, const Module& half, Coord axisX,
                 const std::vector<std::pair<std::string, std::string>>& netMap);

}  // namespace amg::route
