#include "route/router.h"

#include <algorithm>
#include <limits>

#include "obs/obs.h"
#include "primitives/primitives.h"
#include "route/obstacles.h"

namespace amg::route {
namespace {

using tech::Technology;

Coord wireWidth(const Technology& t, LayerId layer, std::optional<Coord> width) {
  const Coord w = width.value_or(t.minWidth(layer));
  if (w < t.minWidth(layer))
    throw DesignRuleError("wire width " + std::to_string(w) + " below minimum of '" +
                          t.info(layer).name + "'");
  return w;
}

}  // namespace

Port portOf(const Module& m, ShapeId id) {
  return Port{m.shape(id).box.center(), m.shape(id).layer};
}

ShapeId wireStraight(Module& m, LayerId layer, Point a, Point b,
                     std::optional<Coord> width, NetId net) {
  const Coord w = wireWidth(m.technology(), layer, width);
  if (a.x != b.x && a.y != b.y)
    throw DesignRuleError("wireStraight: endpoints are not axis-aligned");
  OBS_COUNT("route.wires");
  Box box;
  if (a.x == b.x) {
    const Coord lo = std::min(a.y, b.y) - w / 2, hi = std::max(a.y, b.y) + (w - w / 2);
    box = Box{a.x - w / 2, lo, a.x - w / 2 + w, hi};
  } else {
    const Coord lo = std::min(a.x, b.x) - w / 2, hi = std::max(a.x, b.x) + (w - w / 2);
    box = Box{lo, a.y - w / 2, hi, a.y - w / 2 + w};
  }
  return m.addShape(db::makeShape(box, layer, net));
}

std::pair<ShapeId, ShapeId> wireL(Module& m, LayerId layer, Point a, Point b,
                                  bool xFirst, std::optional<Coord> width, NetId net) {
  const Coord w = wireWidth(m.technology(), layer, width);
  if (a.x == b.x || a.y == b.y) {
    const ShapeId s = wireStraight(m, layer, a, b, w, net);
    return {s, s};
  }
  // Bend at (b.x, a.y) when horizontal-first, else at (a.x, b.y).
  const Point corner = xFirst ? Point{b.x, a.y} : Point{a.x, b.y};
  const Coord lenH = xFirst ? (a.x - corner.x) : (b.x - corner.x);
  const Coord lenV = xFirst ? (b.y - corner.y) : (a.y - corner.y);
  return prim::angleAdaptor(m, layer, corner, lenH, lenV, w, net);
}

std::vector<ShapeId> wireZ(Module& m, LayerId layer, Point a, Point b, Coord mid,
                           bool horizontalArms, std::optional<Coord> width,
                           NetId net) {
  const Coord w = wireWidth(m.technology(), layer, width);
  std::vector<ShapeId> out;
  if (horizontalArms) {
    // a --- (mid, a.y) | (mid, b.y) --- b
    out.push_back(wireStraight(m, layer, a, Point{mid, a.y}, w, net));
    out.push_back(wireStraight(m, layer, Point{mid, a.y}, Point{mid, b.y}, w, net));
    out.push_back(wireStraight(m, layer, Point{mid, b.y}, b, w, net));
  } else {
    out.push_back(wireStraight(m, layer, a, Point{a.x, mid}, w, net));
    out.push_back(wireStraight(m, layer, Point{a.x, mid}, Point{b.x, mid}, w, net));
    out.push_back(wireStraight(m, layer, Point{b.x, mid}, b, w, net));
  }
  return out;
}

std::vector<ShapeId> viaStack(Module& m, Point at, LayerId from, LayerId to,
                              NetId net) {
  const Technology& t = m.technology();
  if (from == to) return {};
  const auto cuts = t.cutsBetween(from, to);
  if (cuts.empty())
    throw DesignRuleError("no cut layer connects '" + t.info(from).name + "' and '" +
                          t.info(to).name + "'");
  const LayerId cut = cuts.front();
  OBS_COUNT("route.vias");
  const auto [cw, ch] = t.cutSize(cut);
  const Coord encFrom = t.enclosure(from, cut).value_or(0);
  const Coord encTo = t.enclosure(to, cut).value_or(0);

  std::vector<ShapeId> out;
  auto pad = [&](LayerId l, Coord enc) {
    const Coord pw = std::max(cw + 2 * enc, t.minWidth(l));
    const Coord ph = std::max(ch + 2 * enc, t.minWidth(l));
    return m.addShape(db::makeShape(Box::centredOn(at, pw, ph), l, net));
  };
  out.push_back(pad(from, encFrom));
  out.push_back(m.addShape(db::makeShape(Box::centredOn(at, cw, ch), cut, net)));
  out.push_back(pad(to, encTo));
  return out;
}

std::vector<ShapeId> connectShapes(Module& m, ShapeId a, ShapeId b, LayerId onLayer,
                                   std::optional<Coord> width) {
  // Copies, not references: the viaStack() calls below add shapes to `m`,
  // which may reallocate the shape vector out from under a reference.
  const db::Shape sa = m.shape(a);
  const db::Shape sb = m.shape(b);
  const NetId net = sa.net != db::kNoNet ? sa.net : sb.net;
  const Point pa = sa.box.center();
  const Point pb = sb.box.center();

  std::vector<ShapeId> out;
  if (sa.layer != onLayer) {
    auto v = viaStack(m, pa, sa.layer, onLayer, net);
    out.insert(out.end(), v.begin(), v.end());
  }
  if (sb.layer != onLayer) {
    auto v = viaStack(m, pb, sb.layer, onLayer, net);
    out.insert(out.end(), v.begin(), v.end());
  }
  if (pa.x == pb.x || pa.y == pb.y) {
    out.push_back(wireStraight(m, onLayer, pa, pb, width, net));
  } else {
    auto [h, v] = wireL(m, onLayer, pa, pb, /*xFirst=*/true, width, net);
    out.push_back(h);
    if (v != h) out.push_back(v);
  }
  return out;
}

std::vector<ShapeId> connectPorts(Module& m, const db::PortDef& a,
                                  const db::PortDef& b, LayerId onLayer,
                                  std::optional<Coord> width) {
  const NetId net = a.net != db::kNoNet ? a.net : b.net;
  std::vector<ShapeId> out;
  if (a.layer != onLayer) {
    auto v = viaStack(m, a.at, a.layer, onLayer, net);
    out.insert(out.end(), v.begin(), v.end());
  }
  if (b.layer != onLayer) {
    auto v = viaStack(m, b.at, b.layer, onLayer, net);
    out.insert(out.end(), v.begin(), v.end());
  }
  if (a.at.x == b.at.x || a.at.y == b.at.y) {
    out.push_back(wireStraight(m, onLayer, a.at, b.at, width, net));
  } else {
    auto [h, v] = wireL(m, onLayer, a.at, b.at, true, width, net);
    out.push_back(h);
    if (v != h) out.push_back(v);
  }
  return out;
}

int channelRoute(Module& m, const std::vector<ChannelNet>& nets, Coord yBottom,
                 Coord yTop, LayerId hLayer, LayerId vLayer,
                 std::optional<Coord> width, bool verifyClear) {
  obs::Span span("route.channel");
  span.arg("module", m.name())
      .arg("nets", static_cast<std::uint64_t>(nets.size()))
      .arg("verify", verifyClear);
  OBS_COUNT("route.channels");
  const Technology& t = m.technology();
  const Coord w = wireWidth(t, hLayer, width);
  const Coord wv = std::max(w, t.minWidth(vLayer));

  // The widest geometry a track carries is its via pads (when the layers
  // differ): pitch and horizontal clearance must clear pads, not just
  // wires.
  Coord trackExtent = w, postExtent = wv;
  if (hLayer != vLayer) {
    const auto cuts = t.cutsBetween(hLayer, vLayer);
    if (cuts.empty())
      throw DesignRuleError("channelRoute: no cut between the routing layers");
    const auto [cw, ch] = t.cutSize(cuts.front());
    for (const tech::LayerId l : {hLayer, vLayer}) {
      const Coord enc = t.enclosure(l, cuts.front()).value_or(0);
      trackExtent = std::max(trackExtent, ch + 2 * enc);
      postExtent = std::max(postExtent, cw + 2 * enc);
    }
  }
  const Coord hSpace = std::max(t.minSpacing(hLayer, hLayer).value_or(w),
                                t.minSpacing(vLayer, vLayer).value_or(wv));
  const Coord pitch = trackExtent + hSpace;

  // Left-edge algorithm: sort by left end, greedily pack onto tracks.
  struct Span {
    std::size_t net;
    Coord lo, hi;
  };
  std::vector<Span> spans;
  spans.reserve(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i)
    spans.push_back(Span{i, std::min(nets[i].xTop, nets[i].xBottom),
                         std::max(nets[i].xTop, nets[i].xBottom)});

  const Coord postSpace = t.minSpacing(vLayer, vLayer).value_or(wv);
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.lo < b.lo; });

  std::vector<Coord> trackRight;         // rightmost occupied x per track
  std::vector<int> trackOf(nets.size());  // net index -> track
  const Coord vClear = postExtent + hSpace;
  for (const Span& s : spans) {
    int track = -1;
    for (std::size_t ti = 0; ti < trackRight.size(); ++ti) {
      // The new span's left post (vertical + pad) must clear the previous
      // span's right post on the same track.
      if (trackRight[ti] + vClear <= s.lo) {
        track = static_cast<int>(ti);
        break;
      }
    }
    if (track < 0) {
      track = static_cast<int>(trackRight.size());
      trackRight.push_back(std::numeric_limits<Coord>::min() / 2);
    }
    trackOf[s.net] = track;
    trackRight[static_cast<std::size_t>(track)] = s.hi;
  }

  // Channel routing presumes distinct pin columns on each side: two nets
  // with posts closer than a wire plus spacing would short.  Posts on
  // opposite sides conflict only when their vertical extents overlap,
  // which the track assignment decides.
  for (std::size_t i = 0; i < nets.size(); ++i) {
    for (std::size_t j = 0; j < nets.size(); ++j) {
      if (i == j) continue;
      auto tooClose = [&](Coord a, Coord b) { return std::abs(a - b) < wv + postSpace; };
      const bool sameSide =
          (j > i) && (tooClose(nets[i].xTop, nets[j].xTop) ||
                      tooClose(nets[i].xBottom, nets[j].xBottom));
      // i's bottom post [yBottom..track_i] vs j's top post [track_j..yTop].
      const bool crossSide =
          tooClose(nets[i].xBottom, nets[j].xTop) && trackOf[i] >= trackOf[j];
      if (sameSide || crossSide)
        throw DesignRuleError("channelRoute: pin columns of nets '" + nets[i].net +
                              "' and '" + nets[j].net +
                              "' conflict; dogleg one of the pins");
    }
  }

  const int tracks = static_cast<int>(trackRight.size());
  const Coord margin = pitch;  // clearance to the channel edges
  if (2 * margin + tracks * pitch > yTop - yBottom)
    throw DesignRuleError("channelRoute: " + std::to_string(tracks) +
                          " tracks do not fit a channel of height " +
                          std::to_string(yTop - yBottom) + " nm");

  // Obstacle probe over the pre-route geometry: each placed segment is
  // checked against foreign shapes, then registered as an obstacle itself
  // (same-net segments are exempt from each other by design).
  std::optional<Obstacles> obs;
  if (verifyClear) obs.emplace(m);
  auto placed = [&](ShapeId id) {
    if (!obs) return;
    if (const auto hit = obs->firstConflict(m.shape(id)))
      throw DesignRuleError("channelRoute: placed segment (shape " +
                            std::to_string(id) + ") conflicts with shape " +
                            std::to_string(*hit));
    obs->add(id);
  };

  for (std::size_t i = 0; i < nets.size(); ++i) {
    const NetId net = m.net(nets[i].net);
    const Coord y = yBottom + margin + trackOf[i] * pitch + w / 2;
    placed(wireStraight(m, vLayer, Point{nets[i].xBottom, yBottom},
                        Point{nets[i].xBottom, y}, wv, net));
    placed(wireStraight(m, vLayer, Point{nets[i].xTop, y}, Point{nets[i].xTop, yTop},
                        wv, net));
    if (nets[i].xTop != nets[i].xBottom) {
      placed(wireStraight(m, hLayer, Point{nets[i].xBottom, y}, Point{nets[i].xTop, y},
                          w, net));
      if (hLayer != vLayer) {
        for (const ShapeId id : viaStack(m, Point{nets[i].xBottom, y}, vLayer, hLayer, net))
          placed(id);
        for (const ShapeId id : viaStack(m, Point{nets[i].xTop, y}, vLayer, hLayer, net))
          placed(id);
      }
    }
  }
  span.arg("tracks", tracks);
  return tracks;
}

ShapeId strapByCompaction(Module& m, std::string_view netName, LayerId layer, Dir dir,
                          std::optional<Coord> width) {
  const Technology& t = m.technology();
  const Coord w = wireWidth(t, layer, width);
  const auto net = m.findNet(netName);
  if (!net)
    throw DesignRuleError("strapByCompaction: module has no net '" +
                          std::string(netName) + "'");
  // Cross-axis extent of the net's geometry on this layer.
  Box extent;
  for (ShapeId id : m.shapesOn(layer))
    if (m.shape(id).net == *net) extent = extent.unite(m.shape(id).box);
  if (extent.empty())
    throw DesignRuleError("strapByCompaction: net '" + std::string(netName) +
                          "' has no geometry on layer '" + t.info(layer).name + "'");

  // Build the strap far out on the arrival side and compact it in.
  Module strap(t, "strap");
  const Box bb = m.bboxAll();
  const Coord off = std::max(bb.width(), bb.height()) * 2 + 100 * kMicron;
  Box sb;
  if (isHorizontal(dir)) {
    const Coord x = dir == Dir::West ? bb.x2 + off : bb.x1 - off - w;
    sb = Box{x, extent.y1, x + w, extent.y2};
  } else {
    const Coord y = dir == Dir::South ? bb.y2 + off : bb.y1 - off - w;
    sb = Box{extent.x1, y, extent.x2, y + w};
  }
  strap.addShape(db::makeShape(sb, layer, strap.net(netName)));

  const auto r = compact::compact(m, strap, dir);
  return r.idMap[0];
}

void addMirrored(Module& m, const Module& half, Coord axisX,
                 const std::vector<std::pair<std::string, std::string>>& netMap) {
  m.merge(half, geom::Transform{});

  // Build the right half with swapped net names, then mirror it in.
  Module right = half;
  // Rename via temporaries to support swaps (a->b, b->a).
  for (std::size_t i = 0; i < netMap.size(); ++i) {
    if (auto n = right.findNet(netMap[i].first))
      right.moveNet(*n, right.net("__tmp" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < netMap.size(); ++i) {
    if (auto n = right.findNet("__tmp" + std::to_string(i)))
      right.moveNet(*n, right.net(netMap[i].second));
  }
  m.merge(right, geom::Transform::mirrorX(axisX));
}

}  // namespace amg::route
