// Obstacle lookup for the routing routines.
//
// A router placing a wire or via needs to know whether the new geometry
// conflicts with the module's existing shapes — closer than the spacing
// rule to a foreign-net shape, or overlapping a shape on an unrelated
// layer.  The naive answer is a scan over every shape per placed segment,
// which turns channel routing into another O(n²) hot path; Obstacles wraps
// the shared geom::SpatialIndex so each probe touches only the shapes
// within the rule halo of the probed box.
//
// Determinism contract (mirrors the DRC/compactor consumers): the indexed
// engine answers are identical to the brute-force scan — firstConflict()
// returns the *lowest-id* conflicting shape in both engines, because index
// candidates come back sorted by id and the exact predicate is re-applied.
#pragma once

#include <optional>
#include <vector>

#include "db/module.h"
#include "geom/spatial.h"

namespace amg::route {

class Obstacles {
 public:
  /// Candidate enumeration strategy; BruteForce is the all-shapes oracle.
  enum class Engine : std::uint8_t { Indexed, BruteForce };

  /// Snapshot the current shapes of `m` as obstacles.  The module must
  /// outlive the Obstacles; shapes added to `m` later are only considered
  /// after an explicit add().  The single-argument form follows the central
  /// obs::spatialEngines() config block (indexed unless steered otherwise).
  explicit Obstacles(const db::Module& m);
  Obstacles(const db::Module& m, Engine engine);

  /// Register a shape created after the snapshot (a placed wire segment)
  /// as an obstacle for subsequent probes.
  void add(db::ShapeId id);

  /// The lowest-id tracked shape in conflict with `s`, or nullopt when `s`
  /// is clear.  A tracked shape conflicts when it is on a non-marker layer,
  /// is not on the same (named) net as `s`, and either violates the
  /// spacing rule between the two layers or — when no rule exists —
  /// overlaps `s` outright.
  std::optional<db::ShapeId> firstConflict(const db::Shape& s) const;

  std::size_t size() const { return ids_.size(); }

 private:
  const db::Module* m_;
  Engine engine_;
  std::vector<db::ShapeId> ids_;  ///< tracked obstacles, ascending
  geom::SpatialIndex idx_;        ///< over ids_ (Indexed engine only)
  mutable std::vector<std::uint32_t> scratch_;
};

}  // namespace amg::route
