#!/usr/bin/env python3
"""Performance-trend gate over the committed benchmark baselines.

The benches write machine-readable reports (BENCH_vm.json,
BENCH_batch.json, BENCH_spatial.json, BENCH_serve.json) next to
wherever they run; a copy of each report is committed at the repository
root as the baseline.
This script compares a fresh report against its committed baseline and
fails when performance *regressed*:

* every numeric metric whose name starts with "speedup" must stay within
  --tolerance (default 30%) of the baseline: fresh >= committed / 1.3.
  Ratios are used, not wall times, so the gate is machine-independent —
  a slower CI box slows numerator and denominator alike.
* every boolean gate that is true in the baseline (byte_identical,
  all_cache_hits, speedup_5x, ...) must still be true.

Getting *faster* never fails; run with --update to fold an intentional
improvement (or an accepted regression) into the committed baselines.

Usage:
    python3 scripts/check_bench_trend.py --fresh-dir build
    python3 scripts/check_bench_trend.py --fresh-dir build --require BENCH_vm.json
    python3 scripts/check_bench_trend.py --fresh-dir build --update

A report with no committed baseline yet passes with a note (the first
--update commits it).  A --require'd report missing from --fresh-dir
fails: CI lists the reports its bench steps are supposed to have
produced, so a bench that silently stopped writing its file cannot turn
the gate vacuous.
"""

import argparse
import json
import os
import shutil
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REPORTS = [
    "BENCH_vm.json",
    "BENCH_batch.json",
    "BENCH_spatial.json",
    "BENCH_serve.json",
]


def walk_metrics(obj, prefix=""):
    """Yield (dotted_name, value) for every scalar in a nested report.

    Lists (per-sample wall times) are skipped: samples are raw context,
    the gated metrics are the top-level ratios computed from them.
    """
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            name = f"{prefix}.{key}" if prefix else key
            if isinstance(value, dict):
                yield from walk_metrics(value, name)
            elif isinstance(value, (bool, int, float)) or value is None:
                yield name, value


def gated(name, value):
    leaf = name.rsplit(".", 1)[-1]
    if isinstance(value, bool):
        return value  # only committed-true booleans gate
    if isinstance(value, (int, float)):
        return leaf.startswith("speedup")
    return False


def check_report(report, fresh_dir, tolerance, update):
    baseline_path = os.path.join(REPO, report)
    fresh_path = os.path.join(fresh_dir, report)
    if not os.path.exists(fresh_path):
        return None, [f"{report}: fresh report not found in {fresh_dir}"]

    try:
        with open(fresh_path, encoding="utf-8") as f:
            fresh = dict(walk_metrics(json.load(f)))
    except (OSError, ValueError) as e:
        return None, [f"{report}: cannot parse fresh report: {e}"]

    if not os.path.exists(baseline_path):
        if update:
            shutil.copyfile(fresh_path, baseline_path)
            return f"{report}: no baseline yet; committed the fresh report", []
        return f"{report}: no committed baseline yet (run --update)", []

    try:
        with open(baseline_path, encoding="utf-8") as f:
            base = dict(walk_metrics(json.load(f)))
    except (OSError, ValueError) as e:
        return None, [f"{report}: cannot parse committed baseline: {e}"]

    errors = []
    gates = 0
    for name, committed in sorted(base.items()):
        if not gated(name, committed):
            continue
        gates += 1
        if name not in fresh:
            errors.append(f"{report}: gated metric {name} disappeared from "
                          "the fresh report")
        elif isinstance(committed, bool):
            if fresh[name] is not True:
                errors.append(f"{report}: boolean gate {name} was true in "
                              f"the baseline but is {fresh[name]!r} now")
        else:
            floor = committed / (1.0 + tolerance)
            if not isinstance(fresh[name], (int, float)) or \
                    isinstance(fresh[name], bool) or fresh[name] < floor:
                errors.append(
                    f"{report}: {name} regressed: {fresh[name]!r} vs "
                    f"committed {committed:g} (floor {floor:.3g} at "
                    f"{tolerance:.0%} tolerance)")
    if gates == 0:
        errors.append(f"{report}: baseline has no gated metrics (no "
                      "speedup_* numbers, no true booleans); the trend "
                      "check would be vacuous")

    if update and not errors:
        shutil.copyfile(fresh_path, baseline_path)
        return f"{report}: {gates} gate(s) ok; baseline refreshed", errors
    return f"{report}: {gates} gate(s) within {tolerance:.0%}", errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh-dir", default="build",
                    help="directory holding the freshly written reports")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed relative drop of a speedup ratio (0.30 = "
                         "fresh may be 30%% below the committed value)")
    ap.add_argument("--require", nargs="+", default=[], metavar="REPORT",
                    help="reports that MUST be present in --fresh-dir")
    ap.add_argument("--update", action="store_true",
                    help="copy passing fresh reports over the committed "
                         "baselines")
    args = ap.parse_args()

    fresh_dir = args.fresh_dir
    if not os.path.isabs(fresh_dir):
        fresh_dir = os.path.join(os.getcwd(), fresh_dir)

    unknown = sorted(set(args.require) - set(REPORTS))
    if unknown:
        print(f"check_bench_trend: unknown report(s) {', '.join(unknown)}; "
              f"known: {', '.join(REPORTS)}", file=sys.stderr)
        return 2

    errors = []
    for report in REPORTS:
        required = report in args.require
        if not required and not os.path.exists(
                os.path.join(fresh_dir, report)):
            print(f"check_bench_trend: {report}: not produced by this run; "
                  "skipped")
            continue
        note, errs = check_report(report, fresh_dir, args.tolerance,
                                  args.update)
        if note:
            print(f"check_bench_trend: {note}")
        errors += errs

    if errors:
        for e in errors:
            print(f"check_bench_trend: {e}", file=sys.stderr)
        print(f"check_bench_trend: FAILED ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print("check_bench_trend: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
