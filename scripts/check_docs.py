#!/usr/bin/env python3
"""Docs-drift and link checker.

Three checks, all run by CI (.github/workflows/ci.yml):

1. CLI drift: run every documented binary with --help and verify that
   each long flag it advertises appears in docs/CLI.md.  A flag added to
   a binary without a docs update fails the build.

2. Markdown links: every relative link in README.md, DESIGN.md and
   docs/*.md must point at an existing file (anchors are stripped).

3. Lint-code registry: every AMG-L* finding code emitted by
   src/analysis must have a row in docs/LINT.md, and every code row in
   docs/LINT.md must still exist in the analyzer (no stale docs).
   Likewise every AMG-B* code emitted by the bytecode verifier
   (src/analysis) or the VM's checked dispatch path (src/lang) must
   have a row in docs/LINT.md and vice versa.

4. Opcode registry: every opcode in the AMG_OPCODE_LIST X-macro table
   (src/lang/bytecode.h) must have a registry row in docs/BYTECODE.md
   with matching operand count and stack effect, and every documented
   row must still exist in the header — both directions, so the VM
   spec can never silently drift from the implementation.

5. Observability registry: every counter/histogram name instrumented
   with OBS_COUNT / OBS_COUNT_N / OBS_HIST under src/ must have a
   registry row in docs/OBSERVABILITY.md, and every documented row must
   still exist in the sources — both directions, with matching kind
   (counter vs histogram).

6. Embedding registry: every AMGEN_API function exported by
   include/amgen.h must have a reference row in docs/EMBEDDING.md, and
   every documented function must still be declared in the header —
   both directions, so the C ABI reference can never silently drift
   from the shipped surface.

Usage:
    python3 scripts/check_docs.py [--bin-dir build/examples]

Run from anywhere; paths resolve relative to the repository root (the
parent of this script's directory).
"""

import argparse
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Binaries whose every --help flag must be documented in docs/CLI.md.
DOCUMENTED_BINARIES = ["dsl_runner", "full_flow", "batch_runner", "amg_lint",
                       "amg_replay", "amg_serve"]

# Markdown files whose relative links must resolve.
LINKED_DOCS = ["README.md", "DESIGN.md", "ROADMAP.md"]

FLAG_RE = re.compile(r"(?<![-\w])(--[a-z][a-z0-9-]*)")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def fail(errors):
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    print(f"check_docs: FAILED ({len(errors)} problem(s))", file=sys.stderr)
    return 1


def check_cli_drift(bin_dir):
    errors = []
    cli_md_path = os.path.join(REPO, "docs", "CLI.md")
    try:
        with open(cli_md_path, encoding="utf-8") as f:
            cli_md = f.read()
    except OSError as e:
        return [f"cannot read docs/CLI.md: {e}"]

    for name in DOCUMENTED_BINARIES:
        binary = os.path.join(bin_dir, name)
        if not os.path.exists(binary):
            errors.append(f"binary not found: {binary} (build first?)")
            continue
        out = subprocess.run([binary, "--help"], capture_output=True,
                             text=True, timeout=60)
        help_text = out.stdout + out.stderr
        if out.returncode != 0:
            errors.append(f"{name} --help exited with {out.returncode}")
            continue
        flags = sorted(set(FLAG_RE.findall(help_text)))
        if not flags:
            errors.append(f"{name} --help advertises no flags; drift check "
                          "would be vacuous")
        for flag in flags:
            # Boundary-aware: "--cache-dir" must not satisfy "--cache-dirs".
            if not re.search(re.escape(flag) + r"(?![\w-])", cli_md):
                errors.append(f"{name}: flag {flag} from --help is not "
                              "documented in docs/CLI.md")
    return errors


def md_files():
    for rel in LINKED_DOCS:
        path = os.path.join(REPO, rel)
        if os.path.exists(path):
            yield rel, path
    docs = os.path.join(REPO, "docs")
    for entry in sorted(os.listdir(docs)):
        if entry.endswith(".md"):
            yield os.path.join("docs", entry), os.path.join(docs, entry)


def strip_code(text):
    """Drop fenced and inline code, where link syntax is not a link."""
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    return re.sub(r"`[^`]*`", "", text)


def check_links():
    errors = []
    for rel, path in md_files():
        with open(path, encoding="utf-8") as f:
            text = strip_code(f.read())
        base = os.path.dirname(path)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure in-page anchor
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")
    return errors


LINT_CODE_RE = re.compile(r'"(AMG-L\d{3})"')
LINT_DOC_ROW_RE = re.compile(r"^\|\s*`(AMG-L\d{3})`", re.M)


def check_lint_registry():
    """src/analysis emits <-> docs/LINT.md documents, both directions."""
    errors = []
    emitted = set()
    analysis = os.path.join(REPO, "src", "analysis")
    for entry in sorted(os.listdir(analysis)):
        if not entry.endswith((".cpp", ".h")):
            continue
        with open(os.path.join(analysis, entry), encoding="utf-8") as f:
            emitted.update(LINT_CODE_RE.findall(f.read()))
    if not emitted:
        return ["no AMG-L* codes found under src/analysis; registry check "
                "would be vacuous"]

    lint_md = os.path.join(REPO, "docs", "LINT.md")
    try:
        with open(lint_md, encoding="utf-8") as f:
            documented = set(LINT_DOC_ROW_RE.findall(f.read()))
    except OSError as e:
        return [f"cannot read docs/LINT.md: {e}"]

    for code in sorted(emitted - documented):
        errors.append(f"lint code {code} is emitted by src/analysis but has "
                      "no registry row in docs/LINT.md")
    for code in sorted(documented - emitted):
        errors.append(f"docs/LINT.md documents {code} but src/analysis never "
                      "emits it (stale registry row?)")
    return errors


VERIFY_CODE_RE = re.compile(r'"(AMG-B\d{3})"')
VERIFY_DOC_ROW_RE = re.compile(r"^\|\s*`(AMG-B\d{3})`", re.M)


def check_verifier_registry():
    """AMG-B codes <-> docs/LINT.md registry rows, both directions.

    The bytecode verifier emits under src/analysis; the checked-dispatch
    runtime traps (AMG-B040/B041) live in src/lang/vm.cpp — scan both.
    """
    errors = []
    emitted = set()
    for sub in ("analysis", "lang"):
        directory = os.path.join(REPO, "src", sub)
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith((".cpp", ".h")):
                continue
            with open(os.path.join(directory, entry), encoding="utf-8") as f:
                emitted.update(VERIFY_CODE_RE.findall(f.read()))
    if not emitted:
        return ["no AMG-B* codes found under src/analysis or src/lang; "
                "verifier registry check would be vacuous"]

    lint_md = os.path.join(REPO, "docs", "LINT.md")
    try:
        with open(lint_md, encoding="utf-8") as f:
            documented = set(VERIFY_DOC_ROW_RE.findall(f.read()))
    except OSError as e:
        return [f"cannot read docs/LINT.md: {e}"]

    for code in sorted(emitted - documented):
        errors.append(f"verifier code {code} is emitted by the sources but "
                      "has no registry row in docs/LINT.md")
    for code in sorted(documented - emitted):
        errors.append(f"docs/LINT.md documents {code} but the sources never "
                      "emit it (stale registry row?)")
    return errors


# An X-macro entry's name, operand count and stack effect always sit on
# the entry's first line: X(NAME, <operands>, "<stack>", "summary..."
OPCODE_XMACRO_RE = re.compile(r'X\(\s*(\w+),\s*(\d+),\s*"([^"]*)"')
# A registry row: | `NAME` | <operands> | <stack> | description... |
OPCODE_DOC_ROW_RE = re.compile(
    r"^\|\s*`(\w+)`\s*\|\s*(\d+)\s*\|\s*([^|\s]+)\s*\|", re.M)


def check_opcode_registry():
    """AMG_OPCODE_LIST <-> docs/BYTECODE.md registry table, both ways."""
    errors = []
    header = os.path.join(REPO, "src", "lang", "bytecode.h")
    try:
        with open(header, encoding="utf-8") as f:
            declared = {name: (int(nops), stack)
                        for name, nops, stack in
                        OPCODE_XMACRO_RE.findall(f.read())}
    except OSError as e:
        return [f"cannot read src/lang/bytecode.h: {e}"]
    if not declared:
        return ["no X(...) entries found in src/lang/bytecode.h; opcode "
                "registry check would be vacuous"]

    bc_md = os.path.join(REPO, "docs", "BYTECODE.md")
    try:
        with open(bc_md, encoding="utf-8") as f:
            documented = {name: (int(nops), stack)
                          for name, nops, stack in
                          OPCODE_DOC_ROW_RE.findall(f.read())}
    except OSError as e:
        return [f"cannot read docs/BYTECODE.md: {e}"]

    for name in sorted(set(declared) - set(documented)):
        errors.append(f"opcode {name} is in AMG_OPCODE_LIST but has no "
                      "registry row in docs/BYTECODE.md")
    for name in sorted(set(documented) - set(declared)):
        errors.append(f"docs/BYTECODE.md documents opcode {name} but "
                      "AMG_OPCODE_LIST no longer declares it (stale row?)")
    for name in sorted(set(declared) & set(documented)):
        if declared[name] != documented[name]:
            errors.append(
                f"opcode {name}: docs/BYTECODE.md says operands="
                f"{documented[name][0]} stack={documented[name][1]!r} but "
                f"src/lang/bytecode.h declares operands={declared[name][0]} "
                f"stack={declared[name][1]!r}")
    return errors


# An instrumentation site: OBS_COUNT("name"), OBS_COUNT_N("name", n) or
# OBS_HIST("name", v).  Names are required to be string literals (see
# docs/OBSERVABILITY.md "Instrumenting new code"), so a source grep is the
# ground truth.
OBS_SITE_RE = re.compile(r'OBS_(COUNT_N|COUNT|HIST)\(\s*"([^"]+)"')
# A registry row: | `name` | counter/histogram | description... |
OBS_DOC_ROW_RE = re.compile(
    r"^\|\s*`([a-z][a-z0-9_.]*)`\s*\|\s*(counter|histogram)\s*\|", re.M)


def check_obs_registry():
    """OBS_* sites under src/ <-> docs/OBSERVABILITY.md registry table."""
    errors = []
    instrumented = {}  # name -> "counter" | "histogram"
    for root, _dirs, files in os.walk(os.path.join(REPO, "src")):
        for entry in sorted(files):
            if not entry.endswith((".cpp", ".h")):
                continue
            with open(os.path.join(root, entry), encoding="utf-8") as f:
                for macro, name in OBS_SITE_RE.findall(f.read()):
                    kind = "histogram" if macro == "HIST" else "counter"
                    prev = instrumented.setdefault(name, kind)
                    if prev != kind:
                        errors.append(f"{name} is used both as a counter and "
                                      "a histogram under src/")
    if not instrumented:
        return ["no OBS_COUNT/OBS_HIST sites found under src/; obs registry "
                "check would be vacuous"]

    obs_md = os.path.join(REPO, "docs", "OBSERVABILITY.md")
    try:
        with open(obs_md, encoding="utf-8") as f:
            documented = dict(OBS_DOC_ROW_RE.findall(f.read()))
    except OSError as e:
        return [f"cannot read docs/OBSERVABILITY.md: {e}"]

    for name in sorted(set(instrumented) - set(documented)):
        errors.append(f"{instrumented[name]} {name} is instrumented under "
                      "src/ but has no registry row in docs/OBSERVABILITY.md")
    for name in sorted(set(documented) - set(instrumented)):
        errors.append(f"docs/OBSERVABILITY.md documents {name} but no "
                      "OBS_* site under src/ uses it (stale registry row?)")
    for name in sorted(set(instrumented) & set(documented)):
        if instrumented[name] != documented[name]:
            errors.append(f"{name}: docs/OBSERVABILITY.md says "
                          f"{documented[name]} but src/ instruments it as a "
                          f"{instrumented[name]}")
    return errors


# An exported C-ABI declaration: the function name always sits on the
# AMGEN_API line, first amg_* token directly followed by '('.
CAPI_DECL_RE = re.compile(r"^AMGEN_API\s.*?\b(amg_\w+)\s*\(", re.M)
# A reference row: | `amg_name(...)` | returns | notes |
CAPI_DOC_ROW_RE = re.compile(r"^\|\s*`(amg_\w+)\(", re.M)


def check_embedding_registry():
    """include/amgen.h exports <-> docs/EMBEDDING.md reference rows."""
    errors = []
    header = os.path.join(REPO, "include", "amgen.h")
    try:
        with open(header, encoding="utf-8") as f:
            declared = set(CAPI_DECL_RE.findall(f.read()))
    except OSError as e:
        return [f"cannot read include/amgen.h: {e}"]
    if not declared:
        return ["no AMGEN_API declarations found in include/amgen.h; "
                "embedding registry check would be vacuous"]

    emb_md = os.path.join(REPO, "docs", "EMBEDDING.md")
    try:
        with open(emb_md, encoding="utf-8") as f:
            documented = set(CAPI_DOC_ROW_RE.findall(f.read()))
    except OSError as e:
        return [f"cannot read docs/EMBEDDING.md: {e}"]

    for name in sorted(declared - documented):
        errors.append(f"{name} is exported by include/amgen.h but has no "
                      "reference row in docs/EMBEDDING.md")
    for name in sorted(documented - declared):
        errors.append(f"docs/EMBEDDING.md documents {name} but "
                      "include/amgen.h no longer declares it (stale row?)")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin-dir", default=os.path.join("build", "examples"),
                    help="directory holding the example binaries")
    ap.add_argument("--skip-cli", action="store_true",
                    help="only check markdown links (no binaries needed)")
    args = ap.parse_args()

    bin_dir = args.bin_dir
    if not os.path.isabs(bin_dir):
        bin_dir = os.path.join(REPO, bin_dir)

    errors = [] if args.skip_cli else check_cli_drift(bin_dir)
    errors += check_links()
    errors += check_lint_registry()
    errors += check_verifier_registry()
    errors += check_opcode_registry()
    errors += check_obs_registry()
    errors += check_embedding_registry()
    if errors:
        return fail(errors)
    print("check_docs: OK (CLI flags documented, markdown links resolve, "
          "lint-code, verifier-code, opcode, observability and embedding "
          "registries in sync)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
