#!/usr/bin/env python3
"""Run full_flow plain and instrumented, validate the obs artifacts, and
fail when instrumentation regresses wall clock by more than the budget.

Usage: check_obs_overhead.py path/to/full_flow [--budget 0.10]

Writes trace.json and stats.json into the current directory (CI uploads
them as artifacts).  Timing is best-of-3 per configuration so a single
scheduler hiccup does not fail the build.
"""
import argparse
import json
import subprocess
import sys
import time


def best_of(n, argv):
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        r = subprocess.run(argv, stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL)
        dt = time.perf_counter() - t0
        if r.returncode != 0:
            sys.exit(f"FAIL: {' '.join(argv)} exited {r.returncode}")
        best = min(best, dt)
    return best


def validate_json(path, required_keys):
    with open(path) as f:
        data = json.load(f)  # raises on malformed JSON
    for key in required_keys:
        if key not in data:
            sys.exit(f"FAIL: {path} lacks required key '{key}'")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("full_flow", help="path to the built full_flow binary")
    ap.add_argument("--budget", type=float, default=0.10,
                    help="allowed fractional slowdown (default 0.10)")
    ap.add_argument("--runs", type=int, default=3)
    args = ap.parse_args()

    plain = best_of(args.runs, [args.full_flow])
    instrumented = best_of(
        args.runs,
        [args.full_flow, "--trace", "trace.json", "--stats=stats.json"])

    trace = validate_json("trace.json", ["traceEvents"])
    events = trace["traceEvents"]
    if not any(e.get("ph") == "X" for e in events):
        sys.exit("FAIL: trace.json holds no complete ('X') span events")
    stats = validate_json("stats.json", ["config", "counters"])
    if not stats["counters"]:
        sys.exit("FAIL: stats.json holds no counters")

    overhead = instrumented / plain - 1.0
    print(f"plain        {plain * 1e3:8.1f} ms (best of {args.runs})")
    print(f"instrumented {instrumented * 1e3:8.1f} ms "
          f"({len(events)} trace events, {len(stats['counters'])} counters)")
    print(f"overhead     {overhead * 100:+7.1f}%  (budget {args.budget:.0%})")
    if overhead > args.budget:
        sys.exit("FAIL: instrumentation overhead exceeds the budget")
    print("OK")


if __name__ == "__main__":
    main()
