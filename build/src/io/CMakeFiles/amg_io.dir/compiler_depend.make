# Empty compiler generated dependencies file for amg_io.
# This may be replaced when dependencies are built.
