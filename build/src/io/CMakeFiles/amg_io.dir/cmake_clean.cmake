file(REMOVE_RECURSE
  "CMakeFiles/amg_io.dir/cif.cpp.o"
  "CMakeFiles/amg_io.dir/cif.cpp.o.d"
  "CMakeFiles/amg_io.dir/gds.cpp.o"
  "CMakeFiles/amg_io.dir/gds.cpp.o.d"
  "CMakeFiles/amg_io.dir/svg.cpp.o"
  "CMakeFiles/amg_io.dir/svg.cpp.o.d"
  "libamg_io.a"
  "libamg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
