file(REMOVE_RECURSE
  "libamg_io.a"
)
