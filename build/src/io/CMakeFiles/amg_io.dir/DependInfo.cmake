
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/cif.cpp" "src/io/CMakeFiles/amg_io.dir/cif.cpp.o" "gcc" "src/io/CMakeFiles/amg_io.dir/cif.cpp.o.d"
  "/root/repo/src/io/gds.cpp" "src/io/CMakeFiles/amg_io.dir/gds.cpp.o" "gcc" "src/io/CMakeFiles/amg_io.dir/gds.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/io/CMakeFiles/amg_io.dir/svg.cpp.o" "gcc" "src/io/CMakeFiles/amg_io.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/amg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/amg_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amg_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
