file(REMOVE_RECURSE
  "CMakeFiles/amg_compact.dir/compactor.cpp.o"
  "CMakeFiles/amg_compact.dir/compactor.cpp.o.d"
  "CMakeFiles/amg_compact.dir/fast.cpp.o"
  "CMakeFiles/amg_compact.dir/fast.cpp.o.d"
  "libamg_compact.a"
  "libamg_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
