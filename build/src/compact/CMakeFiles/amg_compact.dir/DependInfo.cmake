
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compact/compactor.cpp" "src/compact/CMakeFiles/amg_compact.dir/compactor.cpp.o" "gcc" "src/compact/CMakeFiles/amg_compact.dir/compactor.cpp.o.d"
  "/root/repo/src/compact/fast.cpp" "src/compact/CMakeFiles/amg_compact.dir/fast.cpp.o" "gcc" "src/compact/CMakeFiles/amg_compact.dir/fast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/amg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/amg_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/amg_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amg_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
