# Empty compiler generated dependencies file for amg_compact.
# This may be replaced when dependencies are built.
