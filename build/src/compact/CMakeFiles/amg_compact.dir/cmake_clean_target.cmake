file(REMOVE_RECURSE
  "libamg_compact.a"
)
