# Empty compiler generated dependencies file for amg_route.
# This may be replaced when dependencies are built.
