file(REMOVE_RECURSE
  "libamg_route.a"
)
