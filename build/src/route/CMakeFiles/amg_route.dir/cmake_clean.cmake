file(REMOVE_RECURSE
  "CMakeFiles/amg_route.dir/router.cpp.o"
  "CMakeFiles/amg_route.dir/router.cpp.o.d"
  "libamg_route.a"
  "libamg_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
