# Empty dependencies file for amg_db.
# This may be replaced when dependencies are built.
