file(REMOVE_RECURSE
  "libamg_db.a"
)
