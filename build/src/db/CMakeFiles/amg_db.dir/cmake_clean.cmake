file(REMOVE_RECURSE
  "CMakeFiles/amg_db.dir/connectivity.cpp.o"
  "CMakeFiles/amg_db.dir/connectivity.cpp.o.d"
  "CMakeFiles/amg_db.dir/module.cpp.o"
  "CMakeFiles/amg_db.dir/module.cpp.o.d"
  "libamg_db.a"
  "libamg_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
