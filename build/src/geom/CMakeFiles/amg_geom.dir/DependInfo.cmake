
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cpp" "src/geom/CMakeFiles/amg_geom.dir/box.cpp.o" "gcc" "src/geom/CMakeFiles/amg_geom.dir/box.cpp.o.d"
  "/root/repo/src/geom/contour.cpp" "src/geom/CMakeFiles/amg_geom.dir/contour.cpp.o" "gcc" "src/geom/CMakeFiles/amg_geom.dir/contour.cpp.o.d"
  "/root/repo/src/geom/polygon.cpp" "src/geom/CMakeFiles/amg_geom.dir/polygon.cpp.o" "gcc" "src/geom/CMakeFiles/amg_geom.dir/polygon.cpp.o.d"
  "/root/repo/src/geom/subtract.cpp" "src/geom/CMakeFiles/amg_geom.dir/subtract.cpp.o" "gcc" "src/geom/CMakeFiles/amg_geom.dir/subtract.cpp.o.d"
  "/root/repo/src/geom/transform.cpp" "src/geom/CMakeFiles/amg_geom.dir/transform.cpp.o" "gcc" "src/geom/CMakeFiles/amg_geom.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
