file(REMOVE_RECURSE
  "CMakeFiles/amg_geom.dir/box.cpp.o"
  "CMakeFiles/amg_geom.dir/box.cpp.o.d"
  "CMakeFiles/amg_geom.dir/contour.cpp.o"
  "CMakeFiles/amg_geom.dir/contour.cpp.o.d"
  "CMakeFiles/amg_geom.dir/polygon.cpp.o"
  "CMakeFiles/amg_geom.dir/polygon.cpp.o.d"
  "CMakeFiles/amg_geom.dir/subtract.cpp.o"
  "CMakeFiles/amg_geom.dir/subtract.cpp.o.d"
  "CMakeFiles/amg_geom.dir/transform.cpp.o"
  "CMakeFiles/amg_geom.dir/transform.cpp.o.d"
  "libamg_geom.a"
  "libamg_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
