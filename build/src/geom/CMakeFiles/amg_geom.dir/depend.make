# Empty dependencies file for amg_geom.
# This may be replaced when dependencies are built.
