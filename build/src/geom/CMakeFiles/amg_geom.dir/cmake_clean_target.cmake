file(REMOVE_RECURSE
  "libamg_geom.a"
)
