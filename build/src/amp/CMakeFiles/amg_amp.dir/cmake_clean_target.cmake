file(REMOVE_RECURSE
  "libamg_amp.a"
)
