# Empty dependencies file for amg_amp.
# This may be replaced when dependencies are built.
