file(REMOVE_RECURSE
  "CMakeFiles/amg_amp.dir/amplifier.cpp.o"
  "CMakeFiles/amg_amp.dir/amplifier.cpp.o.d"
  "libamg_amp.a"
  "libamg_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
