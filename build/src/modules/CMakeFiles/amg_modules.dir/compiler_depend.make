# Empty compiler generated dependencies file for amg_modules.
# This may be replaced when dependencies are built.
