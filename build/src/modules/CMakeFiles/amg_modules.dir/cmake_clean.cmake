file(REMOVE_RECURSE
  "CMakeFiles/amg_modules.dir/basic.cpp.o"
  "CMakeFiles/amg_modules.dir/basic.cpp.o.d"
  "CMakeFiles/amg_modules.dir/bipolar.cpp.o"
  "CMakeFiles/amg_modules.dir/bipolar.cpp.o.d"
  "CMakeFiles/amg_modules.dir/centroid.cpp.o"
  "CMakeFiles/amg_modules.dir/centroid.cpp.o.d"
  "CMakeFiles/amg_modules.dir/guard.cpp.o"
  "CMakeFiles/amg_modules.dir/guard.cpp.o.d"
  "CMakeFiles/amg_modules.dir/handcrafted.cpp.o"
  "CMakeFiles/amg_modules.dir/handcrafted.cpp.o.d"
  "CMakeFiles/amg_modules.dir/interdigitated.cpp.o"
  "CMakeFiles/amg_modules.dir/interdigitated.cpp.o.d"
  "CMakeFiles/amg_modules.dir/resistor.cpp.o"
  "CMakeFiles/amg_modules.dir/resistor.cpp.o.d"
  "libamg_modules.a"
  "libamg_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
