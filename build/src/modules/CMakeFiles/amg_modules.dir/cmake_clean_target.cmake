file(REMOVE_RECURSE
  "libamg_modules.a"
)
