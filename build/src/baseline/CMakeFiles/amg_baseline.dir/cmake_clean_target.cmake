file(REMOVE_RECURSE
  "libamg_baseline.a"
)
