# Empty dependencies file for amg_baseline.
# This may be replaced when dependencies are built.
