file(REMOVE_RECURSE
  "CMakeFiles/amg_baseline.dir/graph_compactor.cpp.o"
  "CMakeFiles/amg_baseline.dir/graph_compactor.cpp.o.d"
  "libamg_baseline.a"
  "libamg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
