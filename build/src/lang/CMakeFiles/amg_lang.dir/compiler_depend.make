# Empty compiler generated dependencies file for amg_lang.
# This may be replaced when dependencies are built.
