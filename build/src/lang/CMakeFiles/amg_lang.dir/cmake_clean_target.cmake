file(REMOVE_RECURSE
  "libamg_lang.a"
)
