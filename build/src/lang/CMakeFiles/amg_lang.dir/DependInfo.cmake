
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/interp.cpp" "src/lang/CMakeFiles/amg_lang.dir/interp.cpp.o" "gcc" "src/lang/CMakeFiles/amg_lang.dir/interp.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/lang/CMakeFiles/amg_lang.dir/lexer.cpp.o" "gcc" "src/lang/CMakeFiles/amg_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/amg_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/amg_lang.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/primitives/CMakeFiles/amg_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/amg_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/amg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/amg_route.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/amg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/amg_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amg_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
