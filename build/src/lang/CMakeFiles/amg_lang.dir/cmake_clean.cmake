file(REMOVE_RECURSE
  "CMakeFiles/amg_lang.dir/interp.cpp.o"
  "CMakeFiles/amg_lang.dir/interp.cpp.o.d"
  "CMakeFiles/amg_lang.dir/lexer.cpp.o"
  "CMakeFiles/amg_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/amg_lang.dir/parser.cpp.o"
  "CMakeFiles/amg_lang.dir/parser.cpp.o.d"
  "libamg_lang.a"
  "libamg_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
