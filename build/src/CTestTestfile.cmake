# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geom")
subdirs("tech")
subdirs("db")
subdirs("primitives")
subdirs("compact")
subdirs("drc")
subdirs("route")
subdirs("opt")
subdirs("baseline")
subdirs("lang")
subdirs("modules")
subdirs("io")
subdirs("place")
subdirs("amp")
