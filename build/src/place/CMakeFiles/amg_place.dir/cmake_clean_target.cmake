file(REMOVE_RECURSE
  "libamg_place.a"
)
