# Empty compiler generated dependencies file for amg_place.
# This may be replaced when dependencies are built.
