file(REMOVE_RECURSE
  "CMakeFiles/amg_place.dir/slicing.cpp.o"
  "CMakeFiles/amg_place.dir/slicing.cpp.o.d"
  "libamg_place.a"
  "libamg_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
