file(REMOVE_RECURSE
  "CMakeFiles/amg_opt.dir/optimizer.cpp.o"
  "CMakeFiles/amg_opt.dir/optimizer.cpp.o.d"
  "CMakeFiles/amg_opt.dir/rating.cpp.o"
  "CMakeFiles/amg_opt.dir/rating.cpp.o.d"
  "libamg_opt.a"
  "libamg_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
