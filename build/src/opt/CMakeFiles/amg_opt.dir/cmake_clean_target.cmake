file(REMOVE_RECURSE
  "libamg_opt.a"
)
