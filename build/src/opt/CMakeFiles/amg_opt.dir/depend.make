# Empty dependencies file for amg_opt.
# This may be replaced when dependencies are built.
