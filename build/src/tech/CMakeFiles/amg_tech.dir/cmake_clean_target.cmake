file(REMOVE_RECURSE
  "libamg_tech.a"
)
