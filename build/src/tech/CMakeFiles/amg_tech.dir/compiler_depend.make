# Empty compiler generated dependencies file for amg_tech.
# This may be replaced when dependencies are built.
