file(REMOVE_RECURSE
  "CMakeFiles/amg_tech.dir/builtin.cpp.o"
  "CMakeFiles/amg_tech.dir/builtin.cpp.o.d"
  "CMakeFiles/amg_tech.dir/tech.cpp.o"
  "CMakeFiles/amg_tech.dir/tech.cpp.o.d"
  "CMakeFiles/amg_tech.dir/techfile.cpp.o"
  "CMakeFiles/amg_tech.dir/techfile.cpp.o.d"
  "libamg_tech.a"
  "libamg_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
