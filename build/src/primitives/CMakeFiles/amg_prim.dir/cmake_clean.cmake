file(REMOVE_RECURSE
  "CMakeFiles/amg_prim.dir/primitives.cpp.o"
  "CMakeFiles/amg_prim.dir/primitives.cpp.o.d"
  "libamg_prim.a"
  "libamg_prim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_prim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
