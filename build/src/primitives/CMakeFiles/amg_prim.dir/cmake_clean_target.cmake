file(REMOVE_RECURSE
  "libamg_prim.a"
)
