# Empty compiler generated dependencies file for amg_prim.
# This may be replaced when dependencies are built.
