file(REMOVE_RECURSE
  "CMakeFiles/amg_drc.dir/drc.cpp.o"
  "CMakeFiles/amg_drc.dir/drc.cpp.o.d"
  "CMakeFiles/amg_drc.dir/extract.cpp.o"
  "CMakeFiles/amg_drc.dir/extract.cpp.o.d"
  "libamg_drc.a"
  "libamg_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
