file(REMOVE_RECURSE
  "libamg_drc.a"
)
