# Empty dependencies file for amg_drc.
# This may be replaced when dependencies are built.
