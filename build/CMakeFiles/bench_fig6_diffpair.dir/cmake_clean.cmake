file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_diffpair.dir/bench/bench_fig6_diffpair.cpp.o"
  "CMakeFiles/bench_fig6_diffpair.dir/bench/bench_fig6_diffpair.cpp.o.d"
  "bench/bench_fig6_diffpair"
  "bench/bench_fig6_diffpair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_diffpair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
