file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_contactrow.dir/bench/bench_fig3_contactrow.cpp.o"
  "CMakeFiles/bench_fig3_contactrow.dir/bench/bench_fig3_contactrow.cpp.o.d"
  "bench/bench_fig3_contactrow"
  "bench/bench_fig3_contactrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_contactrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
