# Empty dependencies file for bench_fig3_contactrow.
# This may be replaced when dependencies are built.
