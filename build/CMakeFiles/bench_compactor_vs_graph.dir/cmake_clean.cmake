file(REMOVE_RECURSE
  "CMakeFiles/bench_compactor_vs_graph.dir/bench/bench_compactor_vs_graph.cpp.o"
  "CMakeFiles/bench_compactor_vs_graph.dir/bench/bench_compactor_vs_graph.cpp.o.d"
  "bench/bench_compactor_vs_graph"
  "bench/bench_compactor_vs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compactor_vs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
