# Empty dependencies file for bench_compactor_vs_graph.
# This may be replaced when dependencies are built.
