file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_latchup.dir/bench/bench_fig1_latchup.cpp.o"
  "CMakeFiles/bench_fig1_latchup.dir/bench/bench_fig1_latchup.cpp.o.d"
  "bench/bench_fig1_latchup"
  "bench/bench_fig1_latchup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_latchup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
