file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_autoconnect.dir/bench/bench_fig5_autoconnect.cpp.o"
  "CMakeFiles/bench_fig5_autoconnect.dir/bench/bench_fig5_autoconnect.cpp.o.d"
  "bench/bench_fig5_autoconnect"
  "bench/bench_fig5_autoconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_autoconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
