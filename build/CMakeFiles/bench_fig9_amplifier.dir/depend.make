# Empty dependencies file for bench_fig9_amplifier.
# This may be replaced when dependencies are built.
