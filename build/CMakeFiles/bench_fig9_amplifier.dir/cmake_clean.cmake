file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_amplifier.dir/bench/bench_fig9_amplifier.cpp.o"
  "CMakeFiles/bench_fig9_amplifier.dir/bench/bench_fig9_amplifier.cpp.o.d"
  "bench/bench_fig9_amplifier"
  "bench/bench_fig9_amplifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_amplifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
