
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_amplifier.cpp" "CMakeFiles/bench_fig9_amplifier.dir/bench/bench_fig9_amplifier.cpp.o" "gcc" "CMakeFiles/bench_fig9_amplifier.dir/bench/bench_fig9_amplifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/amp/CMakeFiles/amg_amp.dir/DependInfo.cmake"
  "/root/repo/build/src/drc/CMakeFiles/amg_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/modules/CMakeFiles/amg_modules.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/amg_route.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/amg_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/amg_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/amg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/amg_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amg_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
