file(REMOVE_RECURSE
  "CMakeFiles/bench_code_length.dir/bench/bench_code_length.cpp.o"
  "CMakeFiles/bench_code_length.dir/bench/bench_code_length.cpp.o.d"
  "bench/bench_code_length"
  "bench/bench_code_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_code_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
