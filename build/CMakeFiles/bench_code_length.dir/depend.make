# Empty dependencies file for bench_code_length.
# This may be replaced when dependencies are built.
