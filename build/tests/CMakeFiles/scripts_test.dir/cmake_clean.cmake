file(REMOVE_RECURSE
  "CMakeFiles/scripts_test.dir/scripts_test.cpp.o"
  "CMakeFiles/scripts_test.dir/scripts_test.cpp.o.d"
  "scripts_test"
  "scripts_test.pdb"
  "scripts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
