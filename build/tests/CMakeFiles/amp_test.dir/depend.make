# Empty dependencies file for amp_test.
# This may be replaced when dependencies are built.
