file(REMOVE_RECURSE
  "CMakeFiles/amp_test.dir/amp_test.cpp.o"
  "CMakeFiles/amp_test.dir/amp_test.cpp.o.d"
  "amp_test"
  "amp_test.pdb"
  "amp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
