
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/polygon_test.cpp" "tests/CMakeFiles/polygon_test.dir/polygon_test.cpp.o" "gcc" "tests/CMakeFiles/polygon_test.dir/polygon_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/amg_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/amg_prim.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/amg_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/amg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/amg_route.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/amg_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/amg_db.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/amg_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
