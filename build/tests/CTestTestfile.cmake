# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/tech_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/prim_test[1]_include.cmake")
include("/root/repo/build/tests/compact_test[1]_include.cmake")
include("/root/repo/build/tests/drc_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/modules_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/amp_test[1]_include.cmake")
include("/root/repo/build/tests/polygon_test[1]_include.cmake")
include("/root/repo/build/tests/scripts_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
