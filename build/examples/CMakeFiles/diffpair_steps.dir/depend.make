# Empty dependencies file for diffpair_steps.
# This may be replaced when dependencies are built.
