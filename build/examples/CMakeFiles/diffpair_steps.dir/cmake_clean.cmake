file(REMOVE_RECURSE
  "CMakeFiles/diffpair_steps.dir/diffpair_steps.cpp.o"
  "CMakeFiles/diffpair_steps.dir/diffpair_steps.cpp.o.d"
  "diffpair_steps"
  "diffpair_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffpair_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
