file(REMOVE_RECURSE
  "CMakeFiles/dsl_runner.dir/dsl_runner.cpp.o"
  "CMakeFiles/dsl_runner.dir/dsl_runner.cpp.o.d"
  "dsl_runner"
  "dsl_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
