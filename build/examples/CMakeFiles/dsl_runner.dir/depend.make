# Empty dependencies file for dsl_runner.
# This may be replaced when dependencies are built.
