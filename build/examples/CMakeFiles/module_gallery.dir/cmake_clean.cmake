file(REMOVE_RECURSE
  "CMakeFiles/module_gallery.dir/module_gallery.cpp.o"
  "CMakeFiles/module_gallery.dir/module_gallery.cpp.o.d"
  "module_gallery"
  "module_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
