# Empty dependencies file for module_gallery.
# This may be replaced when dependencies are built.
