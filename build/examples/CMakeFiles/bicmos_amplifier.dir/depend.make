# Empty dependencies file for bicmos_amplifier.
# This may be replaced when dependencies are built.
