file(REMOVE_RECURSE
  "CMakeFiles/bicmos_amplifier.dir/bicmos_amplifier.cpp.o"
  "CMakeFiles/bicmos_amplifier.dir/bicmos_amplifier.cpp.o.d"
  "bicmos_amplifier"
  "bicmos_amplifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicmos_amplifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
