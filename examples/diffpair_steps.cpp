// The differential pair of Figs. 6/7, step by step: shows each of the five
// compaction steps and the effect of the variable-edge optimization
// (Fig. 5b) on the final area.
//
//   $ ./diffpair_steps
//
// Writes diffpair_stepN.svg after every compaction and diffpair_final.svg.
#include <cstdio>

#include "compact/compactor.h"
#include "primitives/primitives.h"
#include "drc/drc.h"
#include "io/svg.h"
#include "modules/basic.h"
#include "tech/builtin.h"

using namespace amg;

namespace {

void report(const db::Module& m, const char* what, const char* file) {
  const Box bb = m.bbox();
  std::printf("  %-28s %6.2f x %6.2f um  (%3zu rects)\n", what,
              static_cast<double>(bb.width()) / kMicron,
              static_cast<double>(bb.height()) / kMicron, m.shapeCount());
  io::writeSvg(m, file);
}

}  // namespace

int main() {
  const tech::Technology& t = tech::bicmos1u();
  const Coord W = um(10), L = um(2);

  std::printf("MOS differential pair, W=%.0f um L=%.0f um (paper Figs. 6/7)\n",
              static_cast<double>(W) / kMicron, static_cast<double>(L) / kMicron);

  // Build the two transistors as the paper's Trans entity does.
  modules::MosSpec ms;
  ms.w = W;
  ms.l = L;
  ms.gateNet = "inp";
  ms.sourceNet = "outa";
  ms.drainContact = false;
  const db::Module trans1 = modules::mosTransistor(t, ms);
  ms.gateNet = "inn";
  ms.sourceNet = "tail";
  const db::Module trans2 = modules::mosTransistor(t, ms);

  modules::ContactRowSpec rc;
  rc.layer = "pdiff";
  rc.l = W;
  rc.net = "outb";
  const db::Module diffcon = modules::contactRow(t, rc);

  db::Module m(t, "DiffPair");
  compact::compact(m, trans1, Dir::West);               // step 3
  report(m, "step 3: first transistor", "diffpair_step3.svg");
  compact::compact(m, trans2, Dir::West, {"pdiff"});    // step 4
  report(m, "step 4: second transistor", "diffpair_step4.svg");
  compact::compact(m, diffcon, Dir::West, {"pdiff"});   // step 5
  report(m, "step 5: outer contact row", "diffpair_step5.svg");

  drc::CheckOptions opts;
  opts.latchUp = false;
  drc::expectClean(m, opts);
  std::printf("  design-rule check: clean\n");

  // Fig. 5b: the variable-edge optimization.  A tall middle contact-row
  // metal binds an object arriving from the north; marking its edges
  // variable lets the compactor shrink it ("until it is no longer
  // relevant") and recalculate the contact array.
  auto columns = [&](bool variableMiddle) {
    db::Module cols(t, "columns");
    for (int i = 0; i < 3; ++i) {
      db::Module col(t, "col");
      const Coord h = i == 1 ? um(16) : um(8);
      const auto metal = prim::inbox(col, t.layer("metal1"), um(2.2), h, col.net("s"));
      prim::array(col, t.layer("contact"), {metal}, col.net("s"));
      if (variableMiddle && i == 1)
        col.shape(metal).varEdges = db::EdgeFlags::allVariable();
      col.translate(i * um(6), 0);
      cols.merge(col, geom::Transform{});
    }
    db::Module obj(t, "obj");
    obj.addShape(db::makeShape(Box{0, um(60), um(15), um(62)}, t.layer("metal1"),
                               obj.net("x")));
    compact::compact(cols, obj, Dir::South);
    return cols;
  };
  const db::Module fixedCols = columns(false);
  const db::Module varCols = columns(true);
  std::printf("  Fig. 5b demo: area %.1f -> %.1f um^2 with variable edges\n",
              static_cast<double>(fixedCols.area()) / (kMicron * kMicron),
              static_cast<double>(varCols.area()) / (kMicron * kMicron));
  io::writeSvg(fixedCols, "fig5b_fixed.svg");
  io::writeSvg(varCols, "fig5b_variable.svg");
  std::printf("wrote diffpair_step*.svg, fig5b_fixed.svg, fig5b_variable.svg\n");
  return 0;
}
