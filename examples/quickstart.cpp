// Quickstart: generate the paper's contact row (Figs. 2–3) three ways —
// omitted parameters, partial parameters, full parameters — and write the
// layouts as SVG.
//
//   $ ./quickstart
//
// Produces quickstart_*.svg in the working directory and prints the
// resulting dimensions, reproducing the three cases of Fig. 3.
#include <cstdio>

#include "drc/drc.h"
#include "io/svg.h"
#include "modules/basic.h"
#include "tech/builtin.h"

int main() {
  using namespace amg;
  const tech::Technology& t = tech::bicmos1u();

  struct Case {
    const char* name;
    std::optional<Coord> w, l;
  };
  const Case cases[] = {
      {"both_omitted", std::nullopt, std::nullopt},  // Fig. 3 left
      {"length_omitted", um(8), std::nullopt},       // Fig. 3 middle
      {"fully_specified", um(8), um(3)},             // Fig. 3 right
  };

  std::printf("Contact row generator (paper Fig. 2/3), technology %s\n",
              t.name().c_str());
  for (const Case& c : cases) {
    modules::ContactRowSpec spec;
    spec.layer = "poly";
    spec.w = c.w;
    spec.l = c.l;
    spec.net = "sig";
    const db::Module m = modules::contactRow(t, spec);

    // The environment's promise: always design-rule clean.
    drc::CheckOptions opts;
    opts.latchUp = false;
    drc::expectClean(m, opts);

    const Box bb = m.bbox();
    std::printf("  %-16s -> %5.2f x %5.2f um, %zu contacts\n", c.name,
                static_cast<double>(bb.width()) / kMicron,
                static_cast<double>(bb.height()) / kMicron,
                m.shapesOn(t.layer("contact")).size());
    io::writeSvg(m, std::string("quickstart_") + c.name + ".svg");
  }
  std::printf("wrote quickstart_*.svg\n");
  return 0;
}
