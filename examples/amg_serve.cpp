// amg_serve: generation-as-a-service.  A long-lived daemon that keeps the
// rule deck, the compiled-chunk cache, the whole-layout cache and the
// compactor-prefix cache resident in one process and serves generation
// requests over a unix domain socket — so a warm request costs a cache
// lookup, not a process launch plus a cold engine.
//
//   $ ./amg_serve --socket /tmp/amg.sock &
//   $ ./batch_runner --connect /tmp/amg.sock ../scripts/sweep.manifest
//
// Concurrent clients multiplex over one engine: queued requests coalesce
// into engine batches (the worker pool fans them out) under admission
// control — a full queue rejects with AMG-SRV-002, a queue deadline expires
// with AMG-SRV-003, and SIGTERM/SIGINT begins a graceful drain (finish
// queued work, refuse new work with AMG-SRV-004, exit).  docs/SERVER.md
// has the wire protocol and the operations runbook.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "capi/server.h"
#include "cli_common.h"
#include "lang/interp.h"
#include "util/version.h"

using namespace amg;

namespace {

/// Self-pipe armed by the SIGTERM/SIGINT handler; main() parks on it and
/// runs the drain outside signal context (write() is async-signal-safe,
/// Server::drain() is not).
int gSigPipe[2] = {-1, -1};

void onSignal(int) {
  const char b = 1;
  [[maybe_unused]] const ssize_t w = ::write(gSigPipe[1], &b, 1);
}

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH   unix socket to listen on (required; keep it short,\n"
      "                  unix socket paths cap at ~107 bytes)\n"
      "  --tech T        technology: bicmos1u (default), cmos2u or a .tech"
      " path\n"
      "  --jobs N        engine worker threads (0 = all hardware threads)\n"
      "  --no-cache      disable the whole-layout result cache\n"
      "  --no-prefix-cache  disable the compactor-prefix cache\n"
      "  --cache-dir D   layout-cache disk tier under directory D\n"
      "  --max-queued N  admission limit: reject (AMG-SRV-002) when N jobs\n"
      "                  are already queued (default 1024)\n"
      "  --timeout-ms N  default queue deadline per request (default 30000)\n"
      "  --record FILE   record every served job to an AMGT request trace\n"
      "                  (closed on drain; verify with amg_replay)\n"
      "%s"
      "  --help          show this help and exit\n%s",
      argv0, cli::interpUsage(), cli::obsUsage());
}

}  // namespace

int main(int argc, char** argv) {
  cli::installFlight();
  serve::ServerConfig cfg;
  lang::Engine interp = lang::defaultEngine();
  bool interpSet = false;
  obs::CliOptions obsOpts;

  auto value = [&](int& i, const char* flag) -> const char* {
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=') return argv[i] + n + 1;
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    if (const char* v = value(i, "--socket"))
      cfg.socketPath = v;
    else if (const char* v2 = value(i, "--tech"))
      cfg.tech = v2;
    else if (const char* v3 = value(i, "--jobs"))
      cfg.threads = static_cast<std::size_t>(std::atol(v3));
    else if (const char* v4 = value(i, "--cache-dir"))
      cfg.cacheDir = v4;
    else if (const char* v5 = value(i, "--max-queued"))
      cfg.maxQueuedJobs = static_cast<std::size_t>(std::atol(v5));
    else if (const char* v6 = value(i, "--timeout-ms"))
      cfg.defaultQueueTimeoutMs = static_cast<std::uint32_t>(std::atol(v6));
    else if (const char* v7 = value(i, "--record"))
      cfg.recordPath = v7;
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      cfg.cache = false;
    else if (std::strcmp(argv[i], "--no-prefix-cache") == 0)
      cfg.prefixCache = false;
    else if (cli::parseInterpFlag(argc, argv, i, interp))
      interpSet = true;
    else if (cli::parseObsFlag(argc, argv, i, obsOpts))
      continue;
    else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      usage(argv[0], stderr);
      return 2;
    }
  }
  if (cfg.socketPath.empty()) {
    usage(argv[0], stderr);
    return 2;
  }
  if (interpSet) cfg.interp = interp == lang::Engine::Vm ? 1 : 0;

  if (::pipe(gSigPipe) < 0) {
    std::perror("pipe");
    return 2;
  }
  struct sigaction sa = {};
  sa.sa_handler = onSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dead clients surface as send() errors

  serve::Server server(cfg);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s serving on %s (tech %s, %s)\n", util::kVersionString,
              cfg.socketPath.c_str(),
              cfg.tech.empty() ? "bicmos1u" : cfg.tech.c_str(),
              cfg.recordPath.empty()
                  ? "not recording"
                  : ("recording to " + cfg.recordPath).c_str());
  std::fflush(stdout);

  // Park until a signal or a SHUTDOWN frame drains the server.
  pollfd pfd = {gSigPipe[0], POLLIN, 0};
  while (!server.draining()) {
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) break;
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      server.drain();
      break;
    }
  }
  server.wait();
  const serve::StatsResponse s = server.statsSnapshot();
  std::printf(
      "drained: %llu requests (%llu jobs) served, %llu busy-rejected, "
      "%llu timed out\n",
      static_cast<unsigned long long>(s.requestsServed),
      static_cast<unsigned long long>(s.jobsServed),
      static_cast<unsigned long long>(s.busyRejected),
      static_cast<unsigned long long>(s.timedOut));
  cli::finishObs(obsOpts);
  return 0;
}
