// Full flow: every stage of the paper's layout pipeline in one program.
//
//   1. module generation — a differential pair and a current mirror from
//      the C++ library, plus a bias resistor,
//   2. placement — the mirror above the pair with a routing channel,
//   3. routing — left-edge channel routing of the inter-block nets,
//   4. verification — DRC, latch-up (with automatic substrate contacts)
//      and LVS against the intended netlist,
//   5. export — SVG, CIF and GDSII.
//
//   $ ./full_flow [--jobs N]
//   $ ./full_flow --trace trace.json --stats=stats.json
//   $ ./full_flow --record flow.amgt
//
// --jobs N runs the §2.4 compaction-order report (stage 1b) on N threads
// (0 = all hardware threads; default 1).  The observability flags
// (--trace/--stats/--log-level) are shared with dsl_runner; see obs/obs.h.
// --record captures the run as a one-request AMGT trace (obs/recorder.h):
// the pipeline is C++ code, not a replayable DSL request, so the record is
// External-kind — amg_replay skips it, but `amg_replay --against` diffs two
// recorded runs digest-by-digest (CI runs the flow twice and asserts the
// top-level layout is byte-stable).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "cli_common.h"
#include "gen/fingerprint.h"
#include "io/layout.h"
#include "obs/recorder.h"
#include "util/hash.h"

#include "db/connectivity.h"
#include "obs/obs.h"
#include "drc/drc.h"
#include "drc/extract.h"
#include "io/cif.h"
#include "io/gds.h"
#include "io/svg.h"
#include "modules/basic.h"
#include "modules/interdigitated.h"
#include "modules/resistor.h"
#include "opt/parallel.h"
#include "route/router.h"
#include "tech/builtin.h"
#include "util/thread_pool.h"

using namespace amg;

namespace {

/// Attach point: via from a block's metal1 rail up to metal2 and a riser to
/// the channel edge; only rails entirely below the channel qualify (the
/// same net may also have geometry in the block above).  Returns the pin x.
Coord pinUp(db::Module& m, const std::string& net, Coord wantX, Coord channelEdgeY) {
  const tech::Technology& t = m.technology();
  const auto n = m.findNet(net);
  Box rail;
  for (db::ShapeId id : m.shapesOn(t.layer("metal1"))) {
    const db::Shape& s = m.shape(id);
    if (s.net == *n && s.box.y2 <= channelEdgeY && s.box.area() > rail.area())
      rail = s.box;
  }
  const Coord x = std::clamp(wantX, rail.x1 + um(1.4), rail.x2 - um(1.4));
  route::viaStack(m, Point{x, rail.center().y}, t.layer("metal1"), t.layer("metal2"),
                  *n);
  route::wireStraight(m, t.layer("metal2"), Point{x, rail.center().y},
                      Point{x, channelEdgeY}, um(2), *n);
  return x;
}

/// Parse `--jobs N` / `--jobs=N`; returns 1 when absent (serial report).
std::size_t parseJobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      return static_cast<std::size_t>(std::atol(argv[i] + 7));
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      return static_cast<std::size_t>(std::atol(argv[i + 1]));
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [options]\n"
          "  --jobs N        run the compaction-order report on N threads"
          " (0 = all hardware threads; default 1)\n"
          "  --record FILE   append this run to FILE as an External-kind\n"
          "                  request trace (compare runs: amg_replay --against)\n"
          "  --help          show this help and exit\n%s",
          argv[0], cli::obsUsage());
      return 0;
    }
  }
  cli::installFlight();
  const tech::Technology& t = tech::bicmos1u();
  const std::size_t jobs = parseJobs(argc, argv);
  obs::CliOptions obsOpts;
  std::string recordPath;
  for (int i = 1; i < argc; ++i) {
    if (cli::parseObsFlag(argc, argv, i, obsOpts)) continue;
    if (std::strncmp(argv[i], "--record=", 9) == 0)
      recordPath = argv[i] + 9;
    else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc)
      recordPath = argv[++i];
  }
  obs::Span flowSpan("flow.total");
  std::printf("Full flow in %s\n", t.name().c_str());

  // --- 1. generation -------------------------------------------------------
  modules::DiffPairSpec dp;
  dp.w = um(15);
  dp.l = um(2);
  db::Module pair = modules::diffPair(t, dp);

  modules::MirrorSpec mir;
  mir.w = um(15);
  mir.l = um(2);
  mir.inNet = "outa";   // the mirror input takes the pair's left output
  mir.outNet = "out";
  mir.sourceNet = "vdd";
  db::Module mirror = modules::currentMirror(t, mir);

  modules::ResistorSpec rs;
  rs.squares = 60;
  rs.legs = 3;
  rs.netA = "bias";
  rs.netB = "tail";  // degenerates the tail
  db::Module res = modules::polyResistor(t, rs);

  std::printf("  generated: pair %.0fx%.0f, mirror %.0fx%.0f, resistor %.0fx%.0f um\n",
              (double)pair.bbox().width() / kMicron, (double)pair.bbox().height() / kMicron,
              (double)mirror.bbox().width() / kMicron,
              (double)mirror.bbox().height() / kMicron,
              (double)res.bbox().width() / kMicron, (double)res.bbox().height() / kMicron);

  // --- 1b. §2.4 order report: how would these blocks best pack into one
  // row?  Informational only — the placement below keeps the paper's
  // stacked arrangement — but it exercises the parallel order search on the
  // real generated blocks ("--jobs N" distributes the permutation space).
  {
    modules::ContactRowSpec bias;
    bias.l = um(10);
    bias.net = "bias";
    opt::BuildPlan row(pair);
    row.name = "row";
    row.steps.emplace_back(res, Dir::West);
    row.steps.emplace_back(mirror, Dir::West);
    row.steps.emplace_back(modules::contactRow(t, bias), Dir::West);
    opt::ParallelOptimizeOptions popt;
    popt.threads = jobs;
    const opt::OptimizeResult best = opt::optimizeOrderParallel(row, {}, popt);
    std::string order;
    for (const std::size_t i : best.order) order += std::to_string(i) + " ";
    std::printf("  order search (%zu jobs): best row packing %.0f um^2, order [ %s] "
                "(%zu orders rated, %zu pruned)\n",
                jobs == 0 ? util::defaultThreadCount() : jobs,
                best.score / (kMicron * kMicron), order.c_str(), best.evaluated,
                best.pruned);
  }

  // --- 2. placement: pair and resistor below, mirror above the channel -----
  db::Module top(t, "full_flow");
  const Coord channel = um(24);
  {
    const Box pb = pair.bboxAll();
    pair.translate(-pb.x1, -pb.y1);
    top.merge(pair, geom::Transform{});
    const Box rb = res.bboxAll();
    res.translate(pb.width() + um(8) - rb.x1, -rb.y1);
    top.merge(res, geom::Transform{});
    const Coord rowTop = top.bboxAll().y2;
    const Box mb = mirror.bboxAll();
    mirror.translate(-mb.x1, rowTop + channel - mb.y1);
    top.merge(mirror, geom::Transform{});
  }
  const Coord yChanBot = pair.bboxAll().y2 + um(2);
  const Coord yChanTop = mirror.bboxAll().y1 - um(2);

  // --- 3. routing: outa and outb up into the mirror ------------------------
  // Pins: pair outputs from below, mirror input/out rails from above.
  const Coord xA_b = pinUp(top, "outa", 0, yChanBot);
  const Coord xB_b = pinUp(top, "outb", top.bboxAll().x2, yChanBot);
  // The mirror's rails face the channel from above; drop risers down.
  const auto dropPin = [&](const std::string& net, Coord wantX) {
    const auto n = top.findNet(net);
    Box rail;
    for (db::ShapeId id : top.shapesOn(t.layer("metal1"))) {
      const db::Shape& s = top.shape(id);
      if (s.net == *n && s.box.y1 > yChanTop && s.box.area() > rail.area()) rail = s.box;
    }
    const Coord x = std::clamp(wantX, rail.x1 + um(1.4), rail.x2 - um(1.4));
    route::viaStack(top, Point{x, rail.center().y}, t.layer("metal1"),
                    t.layer("metal2"), *n);
    route::wireStraight(top, t.layer("metal2"), Point{x, rail.center().y},
                        Point{x, yChanTop}, um(2), *n);
    return x;
  };
  const Coord xA_t = dropPin("outa", um(30));
  const Coord xB_t = dropPin("out", um(50));

  // The pair's outb column sits next to the mirror's input column; dogleg
  // its pin eastwards so the channel sees distinct columns.
  const Coord xB_b2 = xB_b + um(8);
  route::wireStraight(top, t.layer("metal2"), Point{xB_b, yChanBot - um(1)},
                      Point{xB_b2, yChanBot - um(1)}, um(2), *top.findNet("outb"));
  route::wireStraight(top, t.layer("metal2"), Point{xB_b2, yChanBot - um(1)},
                      Point{xB_b2, yChanBot}, um(2), *top.findNet("outb"));

  const int tracks = route::channelRoute(
      top,
      {{"outa", xA_t, xA_b}, {"outb_to_out", xB_t, xB_b2}},
      yChanBot, yChanTop, t.layer("metal1"), t.layer("metal2"));
  // The second channel net joins outb (below) to out (above): unify names.
  if (auto bridge = top.findNet("outb_to_out")) {
    top.moveNet(*top.findNet("outb"), *bridge);
    top.moveNet(*top.findNet("out"), *bridge);
  }
  std::printf("  channel routed with %d track(s)\n", tracks);

  // --- 4. verification -------------------------------------------------------
  const int subContacts = drc::insertSubstrateContacts(top, "gnd");
  const auto violations = drc::check(top);
  std::printf("  substrate contacts inserted: %d; DRC violations: %zu\n", subContacts,
              violations.size());
  for (const auto& v : violations)
    std::printf("    [%s] %s\n", drc::violationName(v.kind), v.message.c_str());

  const auto lvsRes = drc::lvs(top,
                               {
                                   {"inp", "outa", "tail"},
                                   {"inn", "tail", "outb_to_out"},
                                   {"outa", "vdd", "outb_to_out"},
                                   {"outa", "vdd", "outa"},
                                   {"outa", "vdd", "outa"},
                                   {"outa", "vdd", "outb_to_out"},
                               });
  std::printf("  LVS: %s (%d layout devices vs %d netlist devices)\n",
              lvsRes.matched ? "matched" : "MISMATCH", lvsRes.layoutDevices,
              lvsRes.netlistDevices);
  for (const auto& msg : lvsRes.messages) std::printf("    %s\n", msg.c_str());

  // --- 5. export --------------------------------------------------------------
  io::writeSvg(top, "full_flow.svg");
  io::writeCif(top, "full_flow.cif");
  io::writeGds(top, "full_flow.gds");
  std::printf("  wrote full_flow.{svg,cif,gds}; total %.0f x %.0f um\n",
              (double)top.bbox().width() / kMicron,
              (double)top.bbox().height() / kMicron);

  const bool flowOk = violations.empty() && lvsRes.matched;
  if (!recordPath.empty()) {
    obs::TraceHeader hdr;
    hdr.tool = "full_flow";
    hdr.techSpec = "bicmos1u";
    hdr.techFingerprint = gen::techFingerprint(t);
    hdr.interp = 1;  // no DSL involved; header default
    hdr.cacheEnabled = false;
    hdr.prefixCacheEnabled = false;
    const obs::SpatialEngineConfig& se = obs::spatialEngines();
    hdr.spatialEngines =
        static_cast<std::uint8_t>((se.compactIndexed ? 1u : 0u) |
                                  (se.drcIndexed ? 2u : 0u) |
                                  (se.connectivityIndexed ? 4u : 0u) |
                                  (se.routeIndexed ? 8u : 0u));
    try {
      obs::Recorder recorder(recordPath, std::move(hdr));
      obs::RequestRecord rec;
      rec.kind = obs::RequestKind::External;
      rec.name = "full_flow.top";
      rec.outcome.ok = flowOk;
      const std::vector<std::uint8_t> bytes = io::serializeLayout(top);
      rec.outcome.layoutHash = util::fnv1a(
          std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()));
      rec.outcome.shapeCount = top.shapeCount();
      if (!flowOk) rec.outcome.diagCode = "AMG-FLOW-001";
      rec.outcome.wallMs = flowSpan.elapsedSeconds() * 1e3;
      recorder.append(rec);
      std::printf("  recorded 1 request to %s\n", recordPath.c_str());
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  cli::finishObs(obsOpts);
  return flowOk ? 0 : 1;
}
