// Static analyzer / linter for layout-description-language scripts: the
// command-line surface of src/analysis (docs/LINT.md has the full AMG-L*
// finding registry).
//
//   $ ./amg_lint ../scripts/diffpair.amg
//   $ ./amg_lint --Werror --builtin ../scripts/*.amg      # the CI gate
//   $ ./amg_lint --tech cmos2u --json lint.json my_module.amg
//
// All named files are analyzed as ONE program (entities accumulate across
// files, like Interpreter::loadEntities), so a library file and the script
// calling it lint together.  Exit status: 0 = clean, 1 = findings fail the
// run (errors, or any warning under --Werror), 2 = usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/bcverify.h"
#include "cli_common.h"
#include "lang/compiler.h"
#include "modules/dsl_sources.h"
#include "obs/json.h"

using namespace amg;

namespace {

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options] <script.amg>...\n"
      "  --tech T        deck to validate layer names against: bicmos1u"
      " (default), cmos2u, a .tech path, or 'none' to skip the tech pass\n"
      "  --Werror        treat warnings as errors (exit 1 on any finding)\n"
      "  --builtin       also lint the built-in library modules"
      " (ContactRow, Trans, DiffPair)\n"
      "  --json FILE     write the findings as a JSON report to FILE\n"
      "  --quiet         suppress per-finding output; summary line only\n"
      "  --dump-bc       after a clean lint, disassemble each file's compiled\n"
      "                  bytecode with source lines interleaved and each\n"
      "                  instruction's abstract stack depth in a [n] column"
      " (docs/BYTECODE.md)\n"
      "  --verify-bc     after a clean lint, run the bytecode verifier on each\n"
      "                  file's compiled chunks and report AMG-B* findings"
      " (docs/LINT.md)\n"
      "  --help          show this help and exit\n%s",
      argv0, cli::obsUsage());
}

struct Source {
  std::string file;
  std::string text;
};

}  // namespace

int main(int argc, char** argv) {
  cli::installFlight();
  std::string techSpec = "bicmos1u", jsonPath;
  bool werror = false, builtin = false, quiet = false, dumpBc = false,
       verifyBc = false;
  obs::CliOptions obsOpts;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    if (cli::parseObsFlag(argc, argv, i, obsOpts)) continue;
    if (std::strncmp(argv[i], "--tech=", 7) == 0)
      techSpec = argv[i] + 7;
    else if (std::strcmp(argv[i], "--tech") == 0 && i + 1 < argc)
      techSpec = argv[++i];
    else if (std::strncmp(argv[i], "--json=", 7) == 0)
      jsonPath = argv[i] + 7;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      jsonPath = argv[++i];
    else if (std::strcmp(argv[i], "--Werror") == 0)
      werror = true;
    else if (std::strcmp(argv[i], "--builtin") == 0)
      builtin = true;
    else if (std::strcmp(argv[i], "--quiet") == 0)
      quiet = true;
    else if (std::strcmp(argv[i], "--dump-bc") == 0)
      dumpBc = true;
    else if (std::strcmp(argv[i], "--verify-bc") == 0)
      verifyBc = true;
    else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(argv[0], stderr);
      return 2;
    } else
      positional.push_back(argv[i]);
  }
  if (positional.empty() && !builtin) {
    usage(argv[0], stderr);
    return 2;
  }

  analysis::Options opt;
  std::vector<tech::Technology> ownedTech;
  if (techSpec != "none") {
    try {
      opt.tech = cli::resolveTech(techSpec, ownedTech);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  std::vector<Source> sources;
  for (const char* path : positional) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", path);
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    sources.push_back(Source{path, ss.str()});
  }
  if (builtin) {
    sources.push_back(Source{"<builtin:ContactRow>", modules::dsl::kContactRow});
    sources.push_back(Source{"<builtin:Trans>", modules::dsl::kTrans});
    sources.push_back(Source{"<builtin:DiffPair>", modules::dsl::kDiffPair});
  }

  analysis::Analyzer analyzer(opt);
  for (const Source& s : sources) analyzer.addSource(s.text, s.file);
  const analysis::Report rep = analyzer.run();

  if (!quiet)
    for (const analysis::Finding& f : rep.findings) {
      std::string_view source;
      for (const Source& s : sources)
        if (s.file == f.diag.loc.file) source = s.text;
      cli::printDiag(f.diag, source, analysis::severityName(f.severity), stdout);
    }
  std::printf("amg_lint: %zu file(s): %zu error(s), %zu warning(s), %zu"
              " note(s)%s\n",
              sources.size(), rep.errors, rep.warnings, rep.notes,
              werror && rep.warnings ? " [--Werror]" : "");

  if (!jsonPath.empty()) {
    std::FILE* jf = std::fopen(jsonPath.c_str(), "wb");
    if (!jf) {
      std::fprintf(stderr, "cannot write '%s'\n", jsonPath.c_str());
      return 2;
    }
    obs::JsonWriter w(jf);
    w.beginObject();
    w.field("tool", "amg_lint");
    w.field("tech", opt.tech ? opt.tech->name().c_str() : "none");
    w.field("werror", werror);
    w.beginArray("files");
    for (const Source& s : sources) w.value(s.file);
    w.end();
    w.beginArray("findings");
    for (const analysis::Finding& f : rep.findings) {
      w.beginObject();
      w.field("severity", analysis::severityName(f.severity));
      w.field("code", f.diag.code);
      w.field("file", f.diag.loc.file);
      w.field("line", f.diag.loc.line);
      w.field("col", f.diag.loc.col);
      w.field("message", f.diag.message);
      if (!f.diag.hint.empty()) w.field("hint", f.diag.hint);
      w.end();
    }
    w.end();
    w.field("errors", static_cast<std::uint64_t>(rep.errors));
    w.field("warnings", static_cast<std::uint64_t>(rep.warnings));
    w.field("notes", static_cast<std::uint64_t>(rep.notes));
    w.field("clean", rep.clean(werror));
    w.end();
    std::fputc('\n', jf);
    std::fclose(jf);
  }

  std::size_t bcFindings = 0;
  if ((dumpBc || verifyBc) && rep.clean(werror)) {
    // Disassembly/verification describe what would run, so only lint-clean
    // files are processed (a broken script has no meaningful bytecode).
    for (const Source& s : sources) {
      std::shared_ptr<const lang::CompiledProgram> prog;
      try {
        prog = lang::compileCached(s.text);
      } catch (const util::DiagError& e) {
        cli::printDiag(e.diag(), s.text);
        cli::finishObs(obsOpts);
        return 1;
      }
      // compileCached already gates on the verifier under the default mode;
      // running it again here is deliberate: --verify-bc reports findings
      // even under AMG_VERIFY=off, and --dump-bc wants the depth table.
      const analysis::ProgramVerification v = analysis::verifyProgram(*prog);
      if (verifyBc) {
        for (const util::Diag& d : v.diags)
          cli::printDiag(d, s.text, "error", stdout);
        bcFindings += v.diags.size();
        if (!quiet)
          std::printf("amg_lint: %s: bytecode %s (%zu chunk(s))\n",
                      s.file.c_str(), v.ok() ? "verified" : "REJECTED",
                      1 + prog->entities.size());
      }
      if (dumpBc) {
        std::printf(";; %s\n", s.file.c_str());
        // The [n] column is the verifier's abstract stack depth on entry
        // to each instruction; '-' marks unreachable code.
        const lang::DisasmAnnotator depth = [&v](const lang::Chunk& c,
                                                 std::uint32_t off) {
          const auto it = v.depths.find(&c);
          if (it == v.depths.end() || off >= it->second.size() ||
              it->second[off] < 0)
            return std::string("-");
          return std::to_string(it->second[off]);
        };
        std::fputs(lang::disassemble(*prog, s.text, depth).c_str(), stdout);
      }
    }
  }

  cli::finishObs(obsOpts);
  return rep.clean(werror) && !bcFindings ? 0 : 1;
}
