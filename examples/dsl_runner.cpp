// Run a layout-description-language script from a file, like the paper's
// interactive environment: every object the calling sequence binds is
// reported and written as SVG.
//
//   $ ./dsl_runner ../scripts/diffpair.amg
//   $ ./dsl_runner ../scripts/contact_row.amg out_prefix
//   $ ./dsl_runner --jobs 4 ../scripts/amplifier.amg
//   $ ./dsl_runner --trace run.json --stats ../scripts/variants.amg
//
// --jobs N checks the produced objects' design rules on N threads
// (0 = all hardware threads; default 1).  --lint statically analyzes the
// script first (see docs/LINT.md); errors stop the run before any
// geometry is built.  The observability flags (--trace/--stats/
// --log-level) are shared with full_flow; see obs/obs.h.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "analysis/analyzer.h"
#include "cli_common.h"
#include "drc/drc.h"
#include "gen/fingerprint.h"
#include "gen/replay.h"
#include "io/layout.h"
#include "io/svg.h"
#include "lang/interp.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "tech/builtin.h"
#include "util/diag.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace {

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(out,
               "usage: %s [options] <script.amg> [output-prefix]\n"
               "  --jobs N        check design rules on N threads (0 = all"
               " hardware threads; default 1)\n"
               "  --lint          statically analyze the script before running"
               " it; lint errors stop the run (docs/LINT.md)\n"
               "  --record FILE   record each produced object as an AMGT\n"
               "                  request trace (replay with amg_replay)\n"
               "%s"
               "  --help          show this help and exit\n%s",
               argv0, amg::cli::interpUsage(), amg::cli::obsUsage());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amg;
  cli::installFlight();
  std::size_t jobs = 1;
  bool lint = false;
  std::string recordPath;
  lang::Engine engine = lang::defaultEngine();
  obs::CliOptions obsOpts;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      jobs = static_cast<std::size_t>(std::atol(argv[i] + 7));
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      jobs = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (std::strcmp(argv[i], "--lint") == 0)
      lint = true;
    else if (std::strncmp(argv[i], "--record=", 9) == 0)
      recordPath = argv[i] + 9;
    else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc)
      recordPath = argv[++i];
    else if (cli::parseInterpFlag(argc, argv, i, engine))
      continue;
    else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (cli::parseObsFlag(argc, argv, i, obsOpts))
      continue;
    else
      positional.push_back(argv[i]);
  }
  if (positional.empty()) {
    usage(argv[0], stderr);
    return 2;
  }
  std::ifstream f(positional[0]);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", positional[0]);
    return 2;
  }
  std::ostringstream src;
  src << f.rdbuf();
  const std::string prefix = positional.size() > 1 ? positional[1] : "dsl";

  const tech::Technology& t = tech::bicmos1u();

  if (lint) {
    analysis::Options opt;
    opt.tech = &t;
    const analysis::Report rep =
        analysis::analyzeSource(src.str(), positional[0], opt);
    for (const analysis::Finding& fd : rep.findings)
      cli::printDiag(fd.diag, src.str(), analysis::severityName(fd.severity));
    if (rep.errors > 0) {
      std::fprintf(stderr, "lint: %zu error(s), %zu warning(s); not running\n",
                   rep.errors, rep.warnings);
      return 1;
    }
  }

  std::optional<obs::Recorder> recorder;
  if (!recordPath.empty()) {
    obs::TraceHeader hdr;
    hdr.tool = "dsl_runner";
    hdr.techSpec = "bicmos1u";
    hdr.techFingerprint = gen::techFingerprint(t);
    hdr.interp = engine == lang::Engine::Vm ? 1 : 0;
    // dsl_runner has no cache tiers; replay under the same conditions.
    hdr.cacheEnabled = false;
    hdr.prefixCacheEnabled = false;
    const obs::SpatialEngineConfig& se = obs::spatialEngines();
    hdr.spatialEngines =
        static_cast<std::uint8_t>((se.compactIndexed ? 1u : 0u) |
                                  (se.drcIndexed ? 2u : 0u) |
                                  (se.connectivityIndexed ? 4u : 0u) |
                                  (se.routeIndexed ? 8u : 0u));
    try {
      recorder.emplace(recordPath, std::move(hdr));
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  lang::Interpreter in(t);
  in.setEngine(engine);
  obs::Span runSpan("dsl.run");
  try {
    in.run(src.str(), positional[0]);
  } catch (const util::DiagError& e) {
    // A failed whole-script run cannot be re-executed per object; record
    // it as one External request so --against diffs still see it.
    if (recorder) {
      obs::RequestRecord rec;
      rec.kind = obs::RequestKind::External;
      rec.name = positional[0];
      rec.scriptPath = positional[0];
      rec.outcome.ok = false;
      rec.outcome.diagCode = e.diag().code;
      rec.outcome.wallMs = runSpan.elapsedSeconds() * 1e3;
      recorder->append(rec);
    }
    // Caret-style rendering against the offending source line.
    cli::printDiag(e.diag(), src.str());
    return 1;
  } catch (const Error& e) {
    if (recorder) {
      obs::RequestRecord rec;
      rec.kind = obs::RequestKind::External;
      rec.name = positional[0];
      rec.scriptPath = positional[0];
      rec.outcome.ok = false;
      rec.outcome.diagCode = "AMG-GEN-001";
      rec.outcome.wallMs = runSpan.elapsedSeconds() * 1e3;
      recorder->append(rec);
    }
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double runMs = runSpan.elapsedSeconds() * 1e3;

  for (const std::string& line : in.output()) std::printf("print: %s\n", line.c_str());

  std::printf("%-16s %-8s %-18s %s\n", "object", "rects", "size (um)", "drc");
  // Collect the global objects, check them in parallel (each module is an
  // independent read-only check), then report in name order.
  std::vector<std::pair<std::string, const db::Module*>> objects;
  for (const auto& [name, v] : in.globals())
    if (v.kind() == lang::Value::Kind::Object) objects.emplace_back(name, &v.asObject());
  std::vector<std::size_t> violationCount(objects.size());
  util::parallelFor(
      objects.size(),
      [&](std::size_t i) {
        drc::CheckOptions opts;
        opts.latchUp = false;
        violationCount[i] = drc::check(*objects[i].second, opts).size();
      },
      jobs);
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& [name, m] = objects[i];
    const Box bb = m->bbox();
    char size[64];
    std::snprintf(size, sizeof size, "%.2f x %.2f",
                  static_cast<double>(bb.width()) / kMicron,
                  static_cast<double>(bb.height()) / kMicron);
    std::printf("%-16s %-8zu %-18s %s\n", name.c_str(), m->shapeCount(), size,
                violationCount[i] == 0 ? "clean" : "VIOLATIONS");
    io::writeSvg(*m, prefix + "_" + name + ".svg");
  }
  // One Script-kind request per produced object: replaying any of them
  // re-runs the whole script and takes that global as the product, so the
  // recorded whole-run counters are exactly what a replay reproduces.
  if (recorder) {
    for (const auto& [name, m] : objects) {
      gen::Job job;
      job.name = name;
      job.scriptPath = positional[0];
      job.script = src.str();
      job.resultVar = name;
      gen::JobResult res;
      res.name = name;
      res.ok = true;
      db::Module copy = *m;
      // The batch engine stamps the job name onto anonymous modules before
      // serializing; hash the same bytes a replay will.
      if (copy.name().empty()) copy.setName(name);
      const std::vector<std::uint8_t> bytes = io::serializeLayout(copy);
      res.layoutHash = util::fnv1a(
          std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()));
      res.layout = std::move(copy);
      res.statements = in.stats().statementsExecuted;
      res.entityCalls = in.stats().entityCalls;
      res.compactions = in.stats().compactions;
      res.variantRollbacks = in.stats().variantRollbacks;
      res.prefixRestored = in.stats().prefixRestored;
      res.wallMs = runMs;
      recorder->append(gen::recordOf(job, res));
    }
    std::printf("recorded %zu requests to %s\n", recorder->recordCount(),
                recordPath.c_str());
  }
  std::printf("interpreter: %zu statements, %zu entity calls, %zu compactions\n",
              in.stats().statementsExecuted, in.stats().entityCalls,
              in.stats().compactions);
  cli::finishObs(obsOpts);
  return 0;
}
