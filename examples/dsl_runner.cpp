// Run a layout-description-language script from a file, like the paper's
// interactive environment: every object the calling sequence binds is
// reported and written as SVG.
//
//   $ ./dsl_runner ../scripts/diffpair.amg
//   $ ./dsl_runner ../scripts/contact_row.amg out_prefix
#include <cstdio>
#include <fstream>
#include <sstream>

#include "drc/drc.h"
#include "io/svg.h"
#include "lang/interp.h"
#include "tech/builtin.h"

int main(int argc, char** argv) {
  using namespace amg;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <script.amg> [output-prefix]\n", argv[0]);
    return 2;
  }
  std::ifstream f(argv[1]);
  if (!f) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream src;
  src << f.rdbuf();
  const std::string prefix = argc > 2 ? argv[2] : "dsl";

  const tech::Technology& t = tech::bicmos1u();
  lang::Interpreter in(t);
  try {
    in.run(src.str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  for (const std::string& line : in.output()) std::printf("print: %s\n", line.c_str());

  std::printf("%-16s %-8s %-18s %s\n", "object", "rects", "size (um)", "drc");
  // Report every global object the calling sequence produced.
  for (const auto& [name, v] : in.globals()) {
    if (v.kind() != lang::Value::Kind::Object) continue;
    const db::Module& m = v.asObject();
    drc::CheckOptions opts;
    opts.latchUp = false;
    const auto violations = drc::check(m, opts);
    const Box bb = m.bbox();
    char size[64];
    std::snprintf(size, sizeof size, "%.2f x %.2f",
                  static_cast<double>(bb.width()) / kMicron,
                  static_cast<double>(bb.height()) / kMicron);
    std::printf("%-16s %-8zu %-18s %s\n", name.c_str(), m.shapeCount(), size,
                violations.empty() ? "clean" : "VIOLATIONS");
    io::writeSvg(m, prefix + "_" + name + ".svg");
  }
  std::printf("interpreter: %zu statements, %zu entity calls, %zu compactions\n",
              in.stats().statementsExecuted, in.stats().entityCalls,
              in.stats().compactions);
  return 0;
}
