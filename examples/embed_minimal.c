/* The minimal libamgen consumer, in plain C99 — the compilable companion
 * to docs/EMBEDDING.md.  Creates an engine on the builtin BiCMOS deck,
 * instantiates the paper's Fig. 2 contact row from an embedded script,
 * prints the outcome, exports an SVG, and tears everything down.
 *
 *   $ ./embed_minimal [out.svg]
 */
#include <stdio.h>

#include "amgen.h"

static const char* kScript =
    "ENT ContactRow(layer, <W>, <L>)\n"
    "  INBOX(layer, W, L)\n"
    "  INBOX(\"metal1\")\n"
    "  ARRAY(\"contact\")\n";

static void print_error(const char* where) {
  amg_diag d;
  if (amg_last_error(&d))
    fprintf(stderr, "%s: [%s] %s\n", where, d.code, d.message);
  else
    fprintf(stderr, "%s: unknown error\n", where);
}

int main(int argc, char** argv) {
  const char* svg_path = argc > 1 ? argv[1] : "contact_row.svg";

  /* Refuse to run against an incompatible library generation. */
  if (amg_api_version() != AMGEN_API_VERSION) {
    fprintf(stderr, "ABI mismatch: header v%u, library v%u\n",
            AMGEN_API_VERSION, amg_api_version());
    return 1;
  }
  printf("%s (api v%u)\n", amg_version(), amg_api_version());

  amg_config cfg;
  amg_config_init(&cfg);
  amg_engine* engine = amg_engine_create("bicmos1u", &cfg);
  if (!engine) {
    print_error("amg_engine_create");
    return 1;
  }

  amg_param params[2] = {{"layer", "poly"}, {"W", "4"}};
  amg_request req;
  amg_request_init(&req);
  req.name = "contact_row";
  req.script = kScript;
  req.entity = "ContactRow";
  req.params = params;
  req.param_count = 2;

  amg_result* result = NULL;
  if (amg_generate(engine, &req, &result) != AMG_OK) {
    print_error("amg_generate");
    amg_engine_destroy(engine);
    return 1;
  }
  if (!amg_result_ok(result)) {
    amg_diag d;
    if (amg_result_diag(result, &d))
      fprintf(stderr, "generation failed: [%s] %s:%d:%d: %s\n", d.code,
              d.file, d.line, d.col, d.message);
    amg_result_destroy(result);
    amg_engine_destroy(engine);
    return 1;
  }

  printf("generated '%s': %llu shapes, layout hash %016llx, %.2f ms\n",
         amg_result_name(result),
         (unsigned long long)amg_result_shape_count(result),
         (unsigned long long)amg_result_layout_hash(result),
         amg_result_wall_ms(result));

  if (amg_result_export(result, AMG_EXPORT_SVG, svg_path) != AMG_OK)
    print_error("amg_result_export");
  else
    printf("wrote %s\n", svg_path);

  amg_result_destroy(result);
  amg_engine_destroy(engine);
  return 0;
}
