// Replay a recorded request trace (obs/recorder.h) and verify that the
// engines still produce byte-identical outcomes.
//
//   $ ./amg_replay sweep.amgt                    # recorded configuration
//   $ ./amg_replay --interp=tree sweep.amgt      # cross-engine oracle
//   $ ./amg_replay --no-cache --jobs 1 sweep.amgt
//   $ ./amg_replay --against other.amgt sweep.amgt   # diff two recordings
//   $ ./amg_replay --list sweep.amgt             # print the trace, run nothing
//
// Exit status: 0 = every request matched, 1 = at least one divergence,
// 2 = usage or I/O error.  On the first divergence the report names the
// request, prints both digests and every differing outcome field.
//
// --perturb N flips the recorded layout hash of request N before
// replaying — a self-test that the divergence machinery actually fails
// (CI runs it and asserts exit status 1).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli_common.h"
#include "gen/fingerprint.h"
#include "gen/replay.h"
#include "obs/recorder.h"
#include "util/diag.h"

using namespace amg;

namespace {

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options] <trace.amgt>\n"
      "  --tech T        replay under this deck instead of the recorded\n"
      "                  spec: bicmos1u, cmos2u, or a .tech path\n"
      "  --no-cache      force the layout cache off for the replay\n"
      "  --cache         force the layout cache on for the replay\n"
      "  --no-prefix-cache  force the compactor-prefix tier off\n"
      "  --jobs N        worker threads (0 = all hardware threads)\n"
      "  --against FILE  diff FILE against the trace record-by-record\n"
      "                  without executing anything (External kinds too)\n"
      "  --perturb N     flip request N's recorded layout hash first\n"
      "                  (self-test: the replay MUST diverge)\n"
      "  --list          print the trace header and requests, run nothing\n"
      "%s"
      "  --help          show this help and exit\n%s",
      argv0, cli::interpUsage(), cli::obsUsage());
}

const char* kindName(obs::RequestKind k) {
  switch (k) {
    case obs::RequestKind::Script:
      return "script";
    case obs::RequestKind::Entity:
      return "entity";
    case obs::RequestKind::External:
      return "external";
  }
  return "?";
}

void printDivergence(const gen::Divergence& d) {
  std::printf("DIVERGENCE at request %zu '%s':\n", d.index, d.name.c_str());
  std::printf("  digest: recorded %016" PRIx64 "  replayed %016" PRIx64 "\n",
              d.recordedDigest, d.replayedDigest);
  for (const auto& [field, rec, rep] : d.deltas())
    std::printf("  %-17s recorded %" PRIu64 "  replayed %" PRIu64 "\n",
                field.c_str(), rec, rep);
  if (d.recorded.diagCode != d.replayed.diagCode)
    std::printf("  %-17s recorded '%s'  replayed '%s'\n", "diag_code",
                d.recorded.diagCode.c_str(), d.replayed.diagCode.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  cli::installFlight();
  std::string techSpec, againstPath;
  gen::ReplayOptions opt;
  bool list = false;
  bool interpOverridden = false;
  lang::Engine interp = lang::defaultEngine();
  long perturb = -1;
  obs::CliOptions obsOpts;
  std::vector<const char*> positional;

  for (int i = 1; i < argc; ++i) {
    if (cli::parseObsFlag(argc, argv, i, obsOpts)) continue;
    if (std::strncmp(argv[i], "--tech=", 7) == 0)
      techSpec = argv[i] + 7;
    else if (std::strcmp(argv[i], "--tech") == 0 && i + 1 < argc)
      techSpec = argv[++i];
    else if (std::strncmp(argv[i], "--against=", 10) == 0)
      againstPath = argv[i] + 10;
    else if (std::strcmp(argv[i], "--against") == 0 && i + 1 < argc)
      againstPath = argv[++i];
    else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      opt.threads = static_cast<std::size_t>(std::atol(argv[i] + 7));
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      opt.threads = static_cast<std::size_t>(std::atol(argv[++i]));
    else if (std::strncmp(argv[i], "--perturb=", 10) == 0)
      perturb = std::atol(argv[i] + 10);
    else if (std::strcmp(argv[i], "--perturb") == 0 && i + 1 < argc)
      perturb = std::atol(argv[++i]);
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      opt.useCache = false;
    else if (std::strcmp(argv[i], "--cache") == 0)
      opt.useCache = true;
    else if (std::strcmp(argv[i], "--no-prefix-cache") == 0)
      opt.noPrefixCache = true;
    else if (std::strcmp(argv[i], "--list") == 0)
      list = true;
    else if (cli::parseInterpFlag(argc, argv, i, interp))
      interpOverridden = true;
    else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      usage(argv[0], stderr);
      return 2;
    } else
      positional.push_back(argv[i]);
  }
  if (positional.size() != 1) {
    usage(argv[0], stderr);
    return 2;
  }
  if (interpOverridden) opt.interp = interp;

  obs::TraceFile trace;
  try {
    trace = obs::readTraceFile(positional[0]);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (perturb >= 0) {
    if (static_cast<std::size_t>(perturb) >= trace.requests.size()) {
      std::fprintf(stderr, "--perturb %ld: trace has only %zu request(s)\n",
                   perturb, trace.requests.size());
      return 2;
    }
    trace.requests[static_cast<std::size_t>(perturb)].outcome.layoutHash ^=
        0x1;
    std::printf("perturbed request %ld's recorded layout hash (self-test:"
                " expecting a divergence)\n",
                perturb);
  }

  const obs::TraceHeader& h = trace.header;
  std::printf("trace %s: tool=%s tech=%s fp=%016" PRIx64
              " interp=%s cache=%s prefix=%s, %zu request(s)\n",
              positional[0], h.tool.c_str(), h.techSpec.c_str(),
              h.techFingerprint, h.interp == 0 ? "tree" : "vm",
              h.cacheEnabled ? "on" : "off",
              h.prefixCacheEnabled ? "on" : "off", trace.requests.size());

  if (list) {
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
      const obs::RequestRecord& r = trace.requests[i];
      std::printf("  [%zu] %-8s %-24s %s layout=%016" PRIx64
                  " shapes=%" PRIu64 "%s%s\n",
                  i, kindName(r.kind), r.name.c_str(),
                  r.outcome.ok ? "ok  " : "FAIL", r.outcome.layoutHash,
                  r.outcome.shapeCount,
                  r.outcome.diagCode.empty() ? "" : " ",
                  r.outcome.diagCode.c_str());
    }
    cli::finishObs(obsOpts);
    return 0;
  }

  gen::ReplayReport report;
  if (!againstPath.empty()) {
    // Pure record-by-record diff of two recordings: nothing re-executes,
    // so External records (full_flow, failed whole-script runs) compare
    // too.
    obs::TraceFile other;
    try {
      other = obs::readTraceFile(againstPath);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    report = gen::compareTraces(trace, other);
    std::printf("compared against %s: %zu record(s), %zu matched\n",
                againstPath.c_str(), report.total, report.matched);
  } else {
    // Replayed traces need a live technology; the recorded spec resolves
    // exactly like every other CLI's --tech (builtin name or .tech path).
    std::vector<tech::Technology> ownedTech;
    const tech::Technology* tech = nullptr;
    try {
      tech = cli::resolveTech(techSpec.empty() ? h.techSpec : techSpec,
                              ownedTech);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    const std::uint64_t fp = gen::techFingerprint(*tech);
    if (fp != h.techFingerprint)
      std::printf("warning: technology fingerprint differs from the"
                  " recording (%016" PRIx64 " vs %016" PRIx64 ") —"
                  " divergences may be the deck, not the engines\n",
                  fp, h.techFingerprint);

    // The recorded spatial-engine block applies to the whole replay
    // process (the flags are read at options construction time).
    obs::SpatialEngineConfig& se = obs::spatialEngines();
    se.compactIndexed = (h.spatialEngines & 1u) != 0;
    se.drcIndexed = (h.spatialEngines & 2u) != 0;
    se.connectivityIndexed = (h.spatialEngines & 4u) != 0;
    se.routeIndexed = (h.spatialEngines & 8u) != 0;

    report = gen::replayTrace(trace, *tech, opt);
    std::printf("replayed %zu of %zu request(s) (%zu external skipped)"
                " in %.1f ms: %zu matched\n",
                report.executed, report.total, report.skippedExternal,
                report.wallMs, report.matched);
  }

  for (const gen::Divergence& d : report.divergences) printDivergence(d);
  if (report.clean())
    std::printf("replay clean: every outcome digest matched\n");
  else
    std::printf("replay FAILED: %zu divergence(s)\n",
                report.divergences.size());
  cli::finishObs(obsOpts);
  return report.clean() ? 0 : 1;
}
