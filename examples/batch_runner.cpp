// Batch module generation: run a manifest of DSL jobs through the
// gen::BatchEngine — many interpreters in parallel, one shared
// content-addressed layout cache, per-job diagnostics.
//
//   $ ./batch_runner ../scripts/sweep.manifest
//   $ ./batch_runner --jobs 8 --cache-dir .amg-cache --report batch.json
//         ../scripts/sweep.manifest   (one command line)
//
// A failing job never aborts the batch: it is reported with its
// file:line:col diagnostic (rendered caret-style against the script) and
// every other job still completes.  See docs/CLI.md for the manifest
// format and the full flag reference.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "capi/client.h"
#include "cli_common.h"
#include "gen/engine.h"
#include "gen/fingerprint.h"
#include "gen/manifest.h"
#include "io/layout.h"
#include "io/svg.h"
#include "obs/obs.h"
#include "obs/recorder.h"
#include "obs/stats_writer.h"
#include "tech/builtin.h"
#include "tech/techfile.h"
#include "util/diag.h"

using namespace amg;

namespace {

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s [options] <manifest>\n"
      "  --jobs N        generate on N worker threads (0 = all hardware"
      " threads; default 0)\n"
      "  --tech T        override the manifest technology: bicmos1u, cmos2u"
      " or a .tech path\n"
      "  --no-cache      disable the result cache (every job generates)\n"
      "  --no-preflight  skip the static-analysis pre-flight (jobs that"
      " would be rejected fail at runtime instead)\n"
      "  --cache-mb N    in-memory cache budget in MiB (default 64)\n"
      "  --cache-dir D   also keep cache entries on disk under directory D\n"
      "  --no-prefix-cache     disable the compactor-prefix cache (every\n"
      "                  compaction step executes; docs/CACHING.md)\n"
      "  --prefix-cache-mb N   prefix-cache memory budget in MiB (default 64)\n"
      "  --prefix-cache-dir D  also keep prefix snapshots on disk under D\n"
      "  --report FILE   write the aggregate JSON report to FILE\n"
      "  --record FILE   record every job to an AMGT request trace; re-run\n"
      "                  and verify it with amg_replay (docs/OBSERVABILITY.md)\n"
      "  --svg PREFIX    write each successful layout as PREFIX_<job>.svg\n"
      "  --connect SOCK  thin-client mode: send the manifest to the amg_serve\n"
      "                  daemon on unix socket SOCK instead of running an\n"
      "                  in-process engine; engine-configuration flags are\n"
      "                  ignored (the server owns the engine; docs/SERVER.md)\n"
      "%s"
      "  --help          show this help and exit\n%s",
      argv0, cli::interpUsage(), cli::obsUsage());
}

}  // namespace

int main(int argc, char** argv) {
  cli::installFlight();
  gen::EngineConfig cfg;
  std::string techOverride, reportPath, svgPrefix, recordPath, connectSock;
  obs::CliOptions obsOpts;
  std::vector<const char*> positional;

  auto value = [&](int& i, const char* flag) -> const char* {
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=') return argv[i] + n + 1;
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
    return nullptr;
  };

  for (int i = 1; i < argc; ++i) {
    if (const char* v = value(i, "--jobs"))
      cfg.threads = static_cast<std::size_t>(std::atol(v));
    else if (const char* v2 = value(i, "--tech"))
      techOverride = v2;
    else if (const char* v3 = value(i, "--cache-mb"))
      cfg.cache.maxBytes = static_cast<std::size_t>(std::atol(v3)) << 20;
    else if (const char* v4 = value(i, "--cache-dir"))
      cfg.cache.diskDir = v4;
    else if (const char* v5 = value(i, "--report"))
      reportPath = v5;
    else if (const char* v6 = value(i, "--svg"))
      svgPrefix = v6;
    else if (const char* v9 = value(i, "--record"))
      recordPath = v9;
    else if (const char* v10 = value(i, "--connect"))
      connectSock = v10;
    else if (const char* v7 = value(i, "--prefix-cache-mb"))
      cfg.prefix.maxBytes = static_cast<std::size_t>(std::atol(v7)) << 20;
    else if (const char* v8 = value(i, "--prefix-cache-dir"))
      cfg.prefix.diskDir = v8;
    else if (std::strcmp(argv[i], "--no-cache") == 0)
      cfg.useCache = false;
    else if (std::strcmp(argv[i], "--no-prefix-cache") == 0)
      cfg.prefixCache = false;
    else if (std::strcmp(argv[i], "--no-preflight") == 0)
      cfg.preflight = false;
    else if (cli::parseInterpFlag(argc, argv, i, cfg.interp))
      continue;
    else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0], stdout);
      return 0;
    } else if (cli::parseObsFlag(argc, argv, i, obsOpts))
      continue;
    else
      positional.push_back(argv[i]);
  }
  if (positional.size() != 1) {
    usage(argv[0], stderr);
    return 2;
  }

  gen::Manifest manifest;
  std::vector<tech::Technology> ownedTech;
  const tech::Technology* tech = nullptr;
  try {
    manifest = gen::loadManifest(positional[0]);
    tech = cli::resolveTech(
        techOverride.empty() ? manifest.techSpec : techOverride, ownedTech);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (manifest.jobs.empty()) {
    std::fprintf(stderr, "error: manifest '%s' declares no jobs\n", positional[0]);
    return 2;
  }

  if (!connectSock.empty()) {
    // Thin-client mode: the daemon owns the engine and every cache tier;
    // this process only speaks the wire protocol (docs/SERVER.md).
    if (!recordPath.empty()) {
      std::fprintf(stderr,
                   "error: --record is server-side in --connect mode; start "
                   "amg_serve with --record instead\n");
      return 2;
    }
    serve::GenerateRequest req;
    req.jobs.reserve(manifest.jobs.size());
    for (const gen::Job& j : manifest.jobs) {
      serve::WireJob wj;
      wj.name = j.name;
      wj.scriptPath = j.scriptPath;
      wj.script = j.script;
      wj.entity = j.entity;
      wj.resultVar = j.resultVar;
      wj.params = j.params;
      req.jobs.push_back(std::move(wj));
    }
    try {
      serve::Client client(connectSock);
      const serve::GenerateResponse resp = client.generate(req);
      if (!resp.errorCode.empty()) {
        std::fprintf(stderr, "error [%s]: %s\n", resp.errorCode.c_str(),
                     resp.errorMessage.c_str());
        return 1;
      }
      std::printf("%-28s %-6s %-9s %s\n", "job", "state", "wall (ms)",
                  "detail");
      std::size_t failed = 0;
      for (std::size_t i = 0; i < resp.results.size(); ++i) {
        const serve::WireResult& r = resp.results[i];
        if (r.ok) {
          const db::Module m = io::deserializeLayout(r.layout, *tech);
          const Box bb = m.bbox();
          std::printf("%-28s %-6s %-9.2f %zu rects, %.2f x %.2f um\n",
                      r.name.c_str(), r.cacheHit ? "hit" : "ok", r.wallMs,
                      m.shapeCount(), static_cast<double>(bb.width()) / kMicron,
                      static_cast<double>(bb.height()) / kMicron);
          if (!svgPrefix.empty())
            io::writeSvg(m, svgPrefix + "_" + r.name + ".svg");
        } else {
          ++failed;
          std::printf("%-28s %-6s %-9.2f %s\n", r.name.c_str(),
                      r.rejected ? "REJECT" : "FAIL", r.wallMs,
                      r.diagCode.c_str());
          util::Diag d;
          d.code = r.diagCode;
          d.message = r.diagMessage;
          d.hint = r.diagHint;
          d.loc.file = r.diagFile;
          d.loc.line = static_cast<int>(r.diagLine);
          d.loc.col = static_cast<int>(r.diagCol);
          cli::printDiag(d, manifest.jobs[i].script);
        }
      }
      std::printf(
          "batch (served): %zu jobs, %zu ok, %zu failed, %llu cache hits, "
          "%llu prefix steps restored in %.1f ms\n",
          resp.results.size(), resp.results.size() - failed, failed,
          static_cast<unsigned long long>(resp.cacheHits),
          static_cast<unsigned long long>(resp.prefixRestoredSteps),
          resp.wallMs);
      if (!reportPath.empty()) {
        obs::StatsWriter w("batch_runner");
        w.metric("jobs", static_cast<double>(resp.results.size()));
        w.metric("succeeded",
                 static_cast<double>(resp.results.size() - failed));
        w.metric("failed", static_cast<double>(failed));
        w.metric("cache_hits", static_cast<double>(resp.cacheHits));
        w.metric("prefix_restored_steps",
                 static_cast<double>(resp.prefixRestoredSteps));
        w.metric("wall_ms", resp.wallMs);
        w.flag("all_ok", failed == 0);
        w.flag("served", true);
        if (!w.write(reportPath))
          std::fprintf(stderr, "cannot write report '%s'\n",
                       reportPath.c_str());
        else
          std::printf("report written to %s\n", reportPath.c_str());
      }
      cli::finishObs(obsOpts);
      return failed == 0 ? 0 : 1;
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  std::optional<obs::Recorder> recorder;
  if (!recordPath.empty()) {
    obs::TraceHeader hdr;
    hdr.tool = "batch_runner";
    hdr.techSpec = techOverride.empty() ? manifest.techSpec : techOverride;
    hdr.techFingerprint = gen::techFingerprint(*tech);
    hdr.interp = cfg.interp == lang::Engine::Vm ? 1 : 0;
    hdr.cacheEnabled = cfg.useCache;
    hdr.prefixCacheEnabled = cfg.prefixCache && compact::prefixCacheEnvEnabled();
    const obs::SpatialEngineConfig& se = obs::spatialEngines();
    hdr.spatialEngines =
        static_cast<std::uint8_t>((se.compactIndexed ? 1u : 0u) |
                                  (se.drcIndexed ? 2u : 0u) |
                                  (se.connectivityIndexed ? 4u : 0u) |
                                  (se.routeIndexed ? 8u : 0u));
    try {
      recorder.emplace(recordPath, std::move(hdr));
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    cfg.recorder = &*recorder;
  }

  gen::BatchEngine engine(*tech, cfg);
  const gen::BatchReport report = engine.run(manifest.jobs);
  if (recorder)
    std::printf("recorded %zu requests to %s\n", recorder->recordCount(),
                recordPath.c_str());

  std::printf("%-28s %-6s %-9s %s\n", "job", "state", "wall (ms)", "detail");
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const gen::JobResult& r = report.jobs[i];
    if (r.ok) {
      const Box bb = r.layout->bbox();
      std::printf("%-28s %-6s %-9.2f %zu rects, %.2f x %.2f um\n", r.name.c_str(),
                  r.cacheHit ? "hit" : "ok", r.wallMs, r.layout->shapeCount(),
                  static_cast<double>(bb.width()) / kMicron,
                  static_cast<double>(bb.height()) / kMicron);
      if (!svgPrefix.empty())
        io::writeSvg(*r.layout, svgPrefix + "_" + r.name + ".svg");
    } else {
      std::printf("%-28s %-6s %-9.2f %s\n", r.name.c_str(),
                  r.rejected ? "REJECT" : "FAIL", r.wallMs,
                  r.diag->code.c_str());
      // Caret rendering against the job's own script source.
      cli::printDiag(*r.diag, manifest.jobs[i].script);
    }
  }
  const gen::LayoutCache::Stats cs = engine.cache().stats();
  std::printf(
      "batch: %zu jobs, %zu ok, %zu failed (%zu rejected in pre-flight, "
      "%.2f ms), %zu cache hits in %.1f ms "
      "(cache: %llu hit, %llu disk, %llu miss, %llu evicted)\n",
      report.jobs.size(), report.succeeded, report.failed, report.rejected,
      report.preflightMs, report.cacheHits, report.wallMs,
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.diskHits),
      static_cast<unsigned long long>(cs.misses),
      static_cast<unsigned long long>(cs.evictions));
  if (const compact::PrefixCache* pc = engine.prefixCache()) {
    const compact::PrefixCache::Stats ps = pc->stats();
    std::printf(
        "prefix: %zu steps restored across %zu jobs "
        "(%llu hit, %llu disk, %llu miss, %llu evicted)\n",
        report.prefixRestoredSteps, report.jobs.size(),
        static_cast<unsigned long long>(ps.hits),
        static_cast<unsigned long long>(ps.diskHits),
        static_cast<unsigned long long>(ps.misses),
        static_cast<unsigned long long>(ps.evictions));
  }

  if (!reportPath.empty()) {
    obs::StatsWriter w("batch_runner");
    for (const gen::JobResult& r : report.jobs)
      w.sample(r.ok ? r.name : r.name + ":" + r.diag->code,
               r.ok ? r.layout->shapeCount() : 0,
               r.ok ? (r.cacheHit ? "cache" : "generated") : "failed", r.wallMs);
    w.metric("jobs", static_cast<double>(report.jobs.size()));
    w.metric("succeeded", static_cast<double>(report.succeeded));
    w.metric("failed", static_cast<double>(report.failed));
    w.metric("rejected", static_cast<double>(report.rejected));
    w.metric("cache_hits", static_cast<double>(report.cacheHits));
    w.metric("cache_evictions", static_cast<double>(cs.evictions));
    w.metric("prefix_restored_steps",
             static_cast<double>(report.prefixRestoredSteps));
    if (const compact::PrefixCache* pc = engine.prefixCache()) {
      const compact::PrefixCache::Stats ps = pc->stats();
      w.metric("prefix_hits", static_cast<double>(ps.hits));
      w.metric("prefix_misses", static_cast<double>(ps.misses));
    }
    w.metric("wall_ms", report.wallMs);
    w.metric("preflight_ms", report.preflightMs);
    w.flag("all_ok", report.failed == 0);
    if (!w.write(reportPath))
      std::fprintf(stderr, "cannot write report '%s'\n", reportPath.c_str());
    else
      std::printf("report written to %s\n", reportPath.c_str());
  }
  cli::finishObs(obsOpts);
  return report.failed == 0 ? 0 : 1;
}
