// The full §3 demonstration: generate the broad-band BiCMOS amplifier
// (blocks A–F), place, route, insert substrate contacts, verify, export.
//
//   $ ./bicmos_amplifier
//
// Prints the per-block report of Fig. 9 (style, size, build time) and the
// total area to compare against the paper's 592 x 481 um^2; writes
// amplifier.svg, module_e.svg (Fig. 10) and amplifier.cif.
#include <cstdio>

#include "amp/amplifier.h"
#include "drc/drc.h"
#include "io/cif.h"
#include "io/gds.h"
#include "io/svg.h"
#include "tech/builtin.h"

int main() {
  using namespace amg;
  const tech::Technology& t = tech::bicmos1u();

  std::printf("Building the BiCMOS amplifier (paper Figs. 8-10) in %s...\n\n",
              t.name().c_str());
  const amp::AmplifierResult res = amp::buildAmplifier(t);

  std::printf("  block  style                                size (um)      rects   time\n");
  for (const auto& b : res.blocks)
    std::printf("    %c    %-34s %6.1f x %6.1f  %5zu  %6.1f ms\n", b.id,
                b.style.c_str(), static_cast<double>(b.width) / kMicron,
                static_cast<double>(b.height) / kMicron, b.rects,
                b.buildSeconds * 1e3);

  std::printf("\n  module generation: %.1f ms   placement+routing+substrate: %.1f ms\n",
              res.totalSeconds * 1e3, res.assembleSeconds * 1e3);
  std::printf("  substrate contacts inserted for the latch-up rule: %d\n",
              res.substrateContacts);
  std::printf("  total layout: %.0f x %.0f um  (paper: 592 x 481 um in the 1um"
              " Siemens process)\n",
              static_cast<double>(res.width) / kMicron,
              static_cast<double>(res.height) / kMicron);

  const auto violations = drc::check(res.layout);
  std::printf("  DRC: %zu violation(s)\n", violations.size());

  io::SvgOptions svg;
  svg.scale = 3.0;
  io::writeSvg(res.layout, "amplifier.svg", svg);
  io::writeCif(res.layout, "amplifier.cif");
  io::writeGds(res.layout, "amplifier.gds");
  io::writeSvg(amp::buildModuleE(t), "module_e.svg");
  std::printf("wrote amplifier.svg, amplifier.cif, amplifier.gds, module_e.svg\n");
  return violations.empty() ? 0 : 1;
}
