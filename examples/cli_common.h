// Helpers shared by the example CLIs (dsl_runner, batch_runner, amg_lint).
// Header-only on purpose: examples/ builds each tool as its own target and
// none of this belongs in the installed libraries.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "tech/builtin.h"
#include "tech/techfile.h"
#include "util/diag.h"

namespace amg::cli {

/// Render a diagnostic caret-style against the source it points into and
/// print it to `out`, e.g.
///
///   scripts/foo.amg:3:9: error [AMG-L001]: unknown entity 'Contct'
///       3 | c = Contct(W = 4)
///         |         ^
///   hint: entities must be declared with ENT ...
inline void printDiag(const util::Diag& d, std::string_view source,
                      std::string_view severity = "error",
                      std::FILE* out = stderr) {
  std::fprintf(out, "%s\n", util::renderDiag(d, source, severity).c_str());
}

/// Resolve a technology spec — a builtin deck name ("bicmos1u", "cmos2u")
/// or a .tech file path.  File-loaded decks are kept alive in `owned`.
/// Throws amg::Error on an unreadable/invalid tech file.
inline const tech::Technology* resolveTech(const std::string& spec,
                                           std::vector<tech::Technology>& owned) {
  if (spec.empty() || spec == "bicmos1u") return &tech::bicmos1u();
  if (spec == "cmos2u") return &tech::cmos2u();
  owned.push_back(tech::loadTechFile(spec));
  return &owned.back();
}

}  // namespace amg::cli
