// Helpers shared by the example CLIs (dsl_runner, batch_runner, amg_lint).
// Header-only on purpose: examples/ builds each tool as its own target and
// none of this belongs in the installed libraries.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include <cstdlib>
#include <cstring>

#include "lang/interp.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "tech/builtin.h"
#include "tech/techfile.h"
#include "util/diag.h"

namespace amg::cli {

/// Render a diagnostic caret-style against the source it points into and
/// print it to `out`, e.g.
///
///   scripts/foo.amg:3:9: error [AMG-L001]: unknown entity 'Contct'
///       3 | c = Contct(W = 4)
///         |         ^
///   hint: entities must be declared with ENT ...
inline void printDiag(const util::Diag& d, std::string_view source,
                      std::string_view severity = "error",
                      std::FILE* out = stderr) {
  std::fprintf(out, "%s\n", util::renderDiag(d, source, severity).c_str());
}

/// Resolve a technology spec — a builtin deck name ("bicmos1u", "cmos2u")
/// or a .tech file path.  File-loaded decks are kept alive in `owned`.
/// Throws amg::Error on an unreadable/invalid tech file.
inline const tech::Technology* resolveTech(const std::string& spec,
                                           std::vector<tech::Technology>& owned) {
  if (spec.empty() || spec == "bicmos1u") return &tech::bicmos1u();
  if (spec == "cmos2u") return &tech::cmos2u();
  owned.push_back(tech::loadTechFile(spec));
  return &owned.back();
}

/// Parse `--interp=tree|vm` / `--interp tree` into `out`.  Returns true
/// when argv[i] was consumed; a bad value prints to stderr and exits 2.
/// Shared across the CLIs so every tool spells the switch the same way
/// (docs/CLI.md).
inline bool parseInterpFlag(int argc, char** argv, int& i, lang::Engine& out) {
  const char* val = nullptr;
  if (std::strncmp(argv[i], "--interp=", 9) == 0)
    val = argv[i] + 9;
  else if (std::strcmp(argv[i], "--interp") == 0 && i + 1 < argc)
    val = argv[++i];
  else
    return false;
  if (std::strcmp(val, "tree") == 0) {
    out = lang::Engine::Tree;
  } else if (std::strcmp(val, "vm") == 0) {
    out = lang::Engine::Vm;
  } else {
    std::fprintf(stderr, "--interp: unknown engine '%s' (tree|vm)\n", val);
    std::exit(2);
  }
  return true;
}

/// The usage line for parseInterpFlag, shared verbatim by the tools.
inline const char* interpUsage() {
  return "  --interp=E      execution tier: vm (bytecode, default) or tree\n"
         "                  (AST walker, the differential oracle)\n";
}

/// The standard observability trio (--trace / --stats / --log-level),
/// shared by every CLI so all tools present one obs-flag surface
/// (docs/CLI.md).  Thin forwarding wrappers over obs::parseCliFlag /
/// obs::finishCli so the tools only include this header.
inline bool parseObsFlag(int argc, char** argv, int& i, obs::CliOptions& o) {
  return obs::parseCliFlag(argc, argv, i, o);
}

/// End-of-run hook writing whatever the parsed obs flags asked for.
inline void finishObs(const obs::CliOptions& o) { obs::finishCli(o); }

/// Usage snippet for the trio, for the tools' --help text.
inline const char* obsUsage() { return obs::cliUsage(); }

/// Arm the always-on flight recorder's crash handlers (obs/flight.h): a
/// SIGSEGV/SIGABRT/std::terminate post-mortems itself with the recent
/// span/log/mark ring on stderr.  Every CLI calls this first thing.
inline void installFlight() { obs::flight::installCrashHandlers(); }

}  // namespace amg::cli
