// Module gallery: generate one of every library module, verify each
// (DRC + LVS where applicable), and write an SVG per module plus an HTML
// contact sheet — the "dedicated module library" of §1 made browsable.
//
//   $ ./module_gallery [output-dir]
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "drc/drc.h"
#include "drc/extract.h"
#include "io/svg.h"
#include "modules/basic.h"
#include "modules/bipolar.h"
#include "modules/centroid.h"
#include "modules/guard.h"
#include "modules/interdigitated.h"
#include "modules/resistor.h"
#include "tech/builtin.h"

using namespace amg;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  const tech::Technology& t = tech::bicmos1u();

  struct Entry {
    const char* name;
    const char* description;
    std::function<db::Module()> build;
  };
  const std::vector<Entry> entries = {
      {"contact_row", "Fig. 2: parameterizable contact row",
       [&] {
         modules::ContactRowSpec s;
         s.layer = "pdiff";
         s.w = um(12);
         s.net = "n";
         return modules::contactRow(t, s);
       }},
      {"mos_transistor", "single MOS with gate/source/drain contacts",
       [&] {
         modules::MosSpec s;
         s.w = um(12);
         s.l = um(2);
         return modules::mosTransistor(t, s);
       }},
      {"mos_in_well", "PMOS transistor with n-well and tap",
       [&] {
         modules::MosSpec s;
         s.w = um(12);
         s.l = um(2);
         db::Module m = modules::mosTransistor(t, s);
         modules::nwellWithTap(m, "vdd");
         return m;
       }},
      {"diff_pair", "Figs. 6/7: simple differential pair",
       [&] {
         modules::DiffPairSpec s;
         s.w = um(12);
         s.l = um(2);
         return modules::diffPair(t, s);
       }},
      {"interdigitated", "4-finger inter-digital MOS with rails",
       [&] {
         modules::InterdigSpec s;
         s.w = um(15);
         s.l = um(1);
         s.fingers = 4;
         return modules::interdigitatedMos(t, s);
       }},
      {"current_mirror", "block B: mirror with the diode in the middle",
       [&] {
         modules::MirrorSpec s;
         s.w = um(20);
         s.l = um(2);
         return modules::currentMirror(t, s);
       }},
      {"cross_coupled", "block C: cross-coupled current sources",
       [&] {
         modules::CrossCoupledSpec s;
         s.w = um(20);
         s.l = um(1);
         return modules::crossCoupledPair(t, s);
       }},
      {"cascode", "block A: stacked inter-digital cascode",
       [&] {
         modules::CascodeSpec s;
         s.w = um(15);
         s.l = um(2);
         return modules::cascodePair(t, s);
       }},
      {"centroid_pair", "block E / Fig. 10: centroid pair with 16 dummies",
       [&] {
         modules::CentroidSpec s;
         s.w = um(15);
         s.l = um(1);
         return modules::centroidDiffPair(t, s);
       }},
      {"npn_pair", "block F: symmetric bipolar pair",
       [&] {
         modules::NpnPairSpec s;
         s.emitterW = um(2);
         s.emitterL = um(10);
         return modules::bipolarPair(t, s);
       }},
      {"poly_resistor", "60-square serpentine poly resistor",
       [&] {
         modules::ResistorSpec s;
         s.squares = 60;
         s.legs = 4;
         return modules::polyResistor(t, s);
       }},
      {"guarded_diff_pair", "diff pair inside a substrate guard ring",
       [&] {
         modules::DiffPairSpec s;
         s.w = um(12);
         s.l = um(2);
         db::Module m = modules::diffPair(t, s);
         modules::substrateRing(m, "gnd");
         return m;
       }},
  };

  std::ofstream html(dir + "/gallery.html");
  html << "<html><head><title>AMGEN module gallery</title></head><body>\n"
       << "<h1>AMGEN module gallery (" << t.name() << ")</h1>\n";

  std::printf("%-20s %-10s %-16s %-8s %s\n", "module", "rects", "size (um)", "drc",
              "devices");
  for (const Entry& e : entries) {
    const db::Module m = e.build();
    drc::CheckOptions opts;
    opts.latchUp = false;
    const auto violations = drc::check(m, opts);
    const auto devices = drc::extractMos(m);
    const Box bb = m.bbox();
    char size[64];
    std::snprintf(size, sizeof size, "%.1f x %.1f",
                  static_cast<double>(bb.width()) / kMicron,
                  static_cast<double>(bb.height()) / kMicron);
    std::printf("%-20s %-10zu %-16s %-8s %zu\n", e.name, m.shapeCount(), size,
                violations.empty() ? "clean" : "VIOLATIONS", devices.size());

    const std::string file = std::string(e.name) + ".svg";
    io::writeSvg(m, dir + "/" + file);
    html << "<h2>" << e.name << "</h2><p>" << e.description << " &mdash; " << size
         << " um, " << m.shapeCount() << " rects, " << devices.size()
         << " extracted device(s)</p><img src=\"" << file << "\"/>\n";
  }
  html << "</body></html>\n";
  std::printf("wrote gallery.html and one SVG per module in %s\n", dir.c_str());
  return 0;
}
